//! Federated data partitioners.
//!
//! Given a pooled dataset, a partitioner decides which samples live on
//! which device. The paper's Non-IID setting is label-skew Dirichlet:
//! for each class, a proportion vector over devices is drawn from
//! `Dir(β)` and samples of that class are dealt out accordingly. Smaller
//! `β` ⇒ more skew; the paper uses β ∈ {0.3, 0.8} plus an IID control.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// A device-assignment strategy for a pooled dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Shuffle and deal samples uniformly (the paper's IID control).
    Iid,
    /// Label-skew `Dir(β)` partition (the paper's Non-IID setting).
    Dirichlet {
        /// Concentration β > 0; smaller is more skewed.
        beta: f64,
    },
    /// McMahan-style pathological split: sort by label, cut into
    /// `shards_per_device × devices` shards, deal shards to devices.
    Shards {
        /// Number of label-shards each device receives (2 in McMahan et al.).
        shards_per_device: usize,
    },
    /// Quantity skew (Li et al.'s `q ~ Dir(β)` setting): label
    /// distributions stay IID but device *sizes* follow a Dirichlet draw,
    /// modelling fleets where some devices hold far more data than others.
    QuantitySkew {
        /// Concentration β > 0; smaller is more unbalanced.
        beta: f64,
    },
}

impl Partition {
    /// Human-readable name used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            Partition::Iid => "IID".to_string(),
            Partition::Dirichlet { beta } => format!("Dirichlet({beta})"),
            Partition::Shards { shards_per_device } => format!("Shards({shards_per_device})"),
            Partition::QuantitySkew { beta } => format!("QuantitySkew({beta})"),
        }
    }
}

/// Assign each sample of `data` to one of `n_devices` devices.
///
/// Returns per-device index lists into `data`. Every sample is assigned to
/// exactly one device, and no device is left empty (an empty device would
/// silently drop out of every algorithm — instead we move one sample from
/// the largest device, which keeps the conservation invariant testable).
pub fn partition_indices<R: Rng>(
    data: &Dataset,
    n_devices: usize,
    strategy: Partition,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(n_devices > 0, "need at least one device");
    assert!(
        data.len() >= n_devices,
        "cannot give {} devices at least one of {} samples",
        n_devices,
        data.len()
    );
    let mut out = match strategy {
        Partition::Iid => iid_partition(data.len(), n_devices, rng),
        Partition::Dirichlet { beta } => dirichlet_partition(data, n_devices, beta, rng),
        Partition::Shards { shards_per_device } => {
            shards_partition(data, n_devices, shards_per_device, rng)
        }
        Partition::QuantitySkew { beta } => quantity_skew_partition(data, n_devices, beta, rng),
    };
    fix_empty_devices(&mut out, rng);
    out
}

fn iid_partition<R: Rng>(n: usize, n_devices: usize, rng: &mut R) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut out = vec![Vec::with_capacity(n / n_devices + 1); n_devices];
    for (i, sample) in idx.into_iter().enumerate() {
        out[i % n_devices].push(sample);
    }
    out
}

fn dirichlet_partition<R: Rng>(
    data: &Dataset,
    n_devices: usize,
    beta: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(beta > 0.0, "Dirichlet beta must be positive");
    let mut out = vec![Vec::new(); n_devices];
    // Group sample indices by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.classes];
    for (i, &l) in data.y.iter().enumerate() {
        by_class[l].push(i);
    }
    for idxs in by_class.iter_mut() {
        if idxs.is_empty() {
            continue;
        }
        idxs.shuffle(rng);
        let props = sample_dirichlet(beta, n_devices, rng);
        // Deal samples by cumulative proportion so counts match the draw
        // as closely as integer rounding allows.
        let n = idxs.len();
        let mut cuts: Vec<usize> = Vec::with_capacity(n_devices);
        let mut acc = 0.0f64;
        for &p in &props {
            acc += p;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        let mut start = 0usize;
        for (d, &end) in cuts.iter().enumerate() {
            let end = end.max(start);
            out[d].extend_from_slice(&idxs[start..end]);
            start = end;
        }
        // Rounding may leave a tail — give it to the last device.
        if start < n {
            out[n_devices - 1].extend_from_slice(&idxs[start..]);
        }
    }
    out
}

fn shards_partition<R: Rng>(
    data: &Dataset,
    n_devices: usize,
    shards_per_device: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(shards_per_device > 0, "need at least one shard per device");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by_key(|&i| data.y[i]);
    let n_shards = n_devices * shards_per_device;
    let shard_len = data.len() / n_shards;
    assert!(shard_len > 0, "too many shards for dataset size");
    let mut shard_ids: Vec<usize> = (0..n_shards).collect();
    shard_ids.shuffle(rng);
    let mut out = vec![Vec::with_capacity(shard_len * shards_per_device); n_devices];
    for (k, &shard) in shard_ids.iter().enumerate() {
        let device = k / shards_per_device;
        let lo = shard * shard_len;
        let hi = if shard == n_shards - 1 {
            data.len()
        } else {
            lo + shard_len
        };
        out[device].extend_from_slice(&idx[lo..hi]);
    }
    out
}

fn quantity_skew_partition<R: Rng>(
    data: &Dataset,
    n_devices: usize,
    beta: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(beta > 0.0, "QuantitySkew beta must be positive");
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let props = sample_dirichlet(beta, n_devices, rng);
    let mut out = Vec::with_capacity(n_devices);
    let mut acc = 0.0f64;
    let mut start = 0usize;
    for (d, &p) in props.iter().enumerate() {
        acc += p;
        let end = if d == n_devices - 1 {
            n
        } else {
            ((acc * n as f64).round() as usize).min(n)
        };
        let end = end.max(start);
        out.push(idx[start..end].to_vec());
        start = end;
    }
    out
}

/// Move samples from the largest devices onto empty ones.
fn fix_empty_devices<R: Rng>(parts: &mut [Vec<usize>], _rng: &mut R) {
    while let Some(empty) = parts.iter().position(|p| p.is_empty()) {
        let largest = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .expect("non-empty partition list");
        if parts[largest].len() <= 1 {
            break; // nothing can be moved without creating a new empty
        }
        let moved = parts[largest].pop().expect("largest partition non-empty");
        parts[empty].push(moved);
    }
}

/// Draw one `Dir(β, …, β)` proportion vector of length `k`.
///
/// Uses the Gamma representation: `x_i ~ Gamma(β, 1)` normalized. Gamma
/// variates come from Marsaglia–Tsang squeeze for `α ≥ 1`, with the
/// standard `α < 1` boost (`Gamma(α) = Gamma(α+1)·U^{1/α}`).
pub fn sample_dirichlet<R: Rng>(beta: f64, k: usize, rng: &mut R) -> Vec<f64> {
    assert!(beta > 0.0 && k > 0);
    let mut draws: Vec<f64> = (0..k).map(|_| sample_gamma(beta, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= f64::MIN_POSITIVE {
        // Pathologically tiny draws (possible for very small β): fall back
        // to a one-hot on a random coordinate, which is the β→0 limit.
        let hot = rng.gen_range(0..k);
        draws.fill(0.0);
        draws[hot] = 1.0;
        return draws;
    }
    for d in draws.iter_mut() {
        *d /= sum;
    }
    draws
}

/// Marsaglia–Tsang Gamma(α, 1) sampler.
fn sample_gamma<R: Rng>(alpha: f64, rng: &mut R) -> f64 {
    if alpha < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_tensor::{rng_from_seed, Tensor};

    fn dataset(n: usize, classes: usize) -> Dataset {
        let x = Tensor::zeros(vec![n, 2]);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    fn assert_conservation(parts: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for p in parts {
            for &i in p {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some sample was dropped");
    }

    #[test]
    fn iid_conserves_and_balances() {
        let d = dataset(100, 10);
        let mut rng = rng_from_seed(0);
        let parts = partition_indices(&d, 10, Partition::Iid, &mut rng);
        assert_conservation(&parts, 100);
        for p in &parts {
            assert_eq!(p.len(), 10);
        }
    }

    #[test]
    fn dirichlet_conserves_all_samples() {
        let d = dataset(500, 10);
        let mut rng = rng_from_seed(1);
        for beta in [0.1, 0.3, 0.8, 10.0] {
            let parts = partition_indices(&d, 20, Partition::Dirichlet { beta }, &mut rng);
            assert_conservation(&parts, 500);
            assert!(parts.iter().all(|p| !p.is_empty()));
        }
    }

    #[test]
    fn small_beta_is_more_skewed_than_large() {
        let d = dataset(2000, 10);
        let skew = |beta: f64, seed: u64| -> f64 {
            let mut rng = rng_from_seed(seed);
            let parts = partition_indices(&d, 10, Partition::Dirichlet { beta }, &mut rng);
            // Mean over devices of the max class share (1/classes = IID).
            parts
                .iter()
                .map(|p| {
                    let sub = d.subset(p);
                    let dist = sub.label_distribution();
                    dist.into_iter().fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / 10.0
        };
        // Average over seeds to avoid flakiness.
        let skew_small: f64 = (0..5).map(|s| skew(0.1, s)).sum::<f64>() / 5.0;
        let skew_large: f64 = (0..5).map(|s| skew(10.0, s)).sum::<f64>() / 5.0;
        assert!(
            skew_small > skew_large + 0.1,
            "Dir(0.1) skew {skew_small} should exceed Dir(10) skew {skew_large}"
        );
    }

    #[test]
    fn shards_gives_few_classes_per_device() {
        let d = dataset(400, 10);
        let mut rng = rng_from_seed(2);
        let parts = partition_indices(
            &d,
            20,
            Partition::Shards {
                shards_per_device: 2,
            },
            &mut rng,
        );
        assert_conservation(&parts, 400);
        for p in &parts {
            let classes_held = d
                .subset(p)
                .class_histogram()
                .iter()
                .filter(|&&c| c > 0)
                .count();
            assert!(
                classes_held <= 4,
                "shards device saw {classes_held} classes"
            );
        }
    }

    #[test]
    fn no_empty_devices_even_under_extreme_skew() {
        let d = dataset(60, 3);
        for seed in 0..10 {
            let mut rng = rng_from_seed(seed);
            let parts = partition_indices(&d, 30, Partition::Dirichlet { beta: 0.05 }, &mut rng);
            assert!(
                parts.iter().all(|p| !p.is_empty()),
                "seed {seed} left an empty device"
            );
            assert_conservation(&parts, 60);
        }
    }

    #[test]
    fn dirichlet_proportions_sum_to_one() {
        let mut rng = rng_from_seed(3);
        for beta in [0.05, 0.5, 1.0, 5.0] {
            let p = sample_dirichlet(beta, 16, &mut rng);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "beta {beta}: sum {sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_matches_alpha() {
        let mut rng = rng_from_seed(4);
        for alpha in [0.5f64, 1.0, 2.0, 7.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.1 * alpha.max(1.0),
                "alpha {alpha}: mean {mean}"
            );
        }
    }

    #[test]
    fn partition_labels() {
        assert_eq!(Partition::Iid.label(), "IID");
        assert_eq!(Partition::Dirichlet { beta: 0.3 }.label(), "Dirichlet(0.3)");
        assert_eq!(
            Partition::Shards {
                shards_per_device: 2
            }
            .label(),
            "Shards(2)"
        );
        assert_eq!(
            Partition::QuantitySkew { beta: 0.5 }.label(),
            "QuantitySkew(0.5)"
        );
    }

    #[test]
    fn quantity_skew_conserves_and_unbalances() {
        let d = dataset(1000, 10);
        let mut rng = rng_from_seed(31);
        let parts = partition_indices(&d, 10, Partition::QuantitySkew { beta: 0.2 }, &mut rng);
        assert_conservation(&parts, 1000);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(
            max > 3 * min.max(1),
            "Dir(0.2) sizes should be strongly unbalanced: {sizes:?}"
        );
    }

    #[test]
    fn quantity_skew_keeps_labels_roughly_iid() {
        // Large shards should have near-global label distributions — the
        // skew is in quantity, not labels.
        let d = dataset(2000, 10);
        let mut rng = rng_from_seed(32);
        let parts = partition_indices(&d, 5, Partition::QuantitySkew { beta: 1.0 }, &mut rng);
        let global = d.label_distribution();
        for p in parts.iter().filter(|p| p.len() >= 200) {
            let shard = d.subset(p).label_distribution();
            let l1: f64 = shard.iter().zip(&global).map(|(a, b)| (a - b).abs()).sum();
            assert!(l1 < 0.3, "large shard should be near-IID, L1={l1}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn more_devices_than_samples_panics() {
        let d = dataset(5, 2);
        let mut rng = rng_from_seed(5);
        let _ = partition_indices(&d, 10, Partition::Iid, &mut rng);
    }
}
