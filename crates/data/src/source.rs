//! The environment's view of device data: dense or lazily realised.

use std::ops::Deref;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::shard::{ShardCache, ShardPlan};

/// Where device shards come from.
///
/// `Dense` is the historical path — every shard materialised up front,
/// borrowed on access (bit-identical behaviour for all existing
/// configurations, and still the zero-overhead choice at benchmark
/// scale ≤ a few thousand devices). `Lazy` derives shards on demand
/// from a [`ShardPlan`] behind a bounded [`ShardCache`], so per-round
/// cost tracks the sampled cohort, never the enrolled fleet.
#[derive(Debug)]
pub enum DataSource {
    /// One materialised shard per device.
    Dense(Vec<Dataset>),
    /// Shards realised on demand as pure functions of `(seed, device)`.
    Lazy {
        /// The pure per-device derivation.
        plan: Arc<ShardPlan>,
        /// Bounded LRU over realised shards, shared across workers.
        cache: ShardCache,
    },
}

/// A shard handle: borrowed from a dense vector or held alive by the
/// shard cache. Derefs to [`Dataset`] either way.
pub enum ShardRef<'a> {
    /// Borrowed from [`DataSource::Dense`].
    Borrowed(&'a Dataset),
    /// Cache-resident realisation from [`DataSource::Lazy`].
    Cached(Arc<Dataset>),
}

impl Deref for ShardRef<'_> {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        match self {
            ShardRef::Borrowed(d) => d,
            ShardRef::Cached(d) => d,
        }
    }
}

impl DataSource {
    /// A lazy source over `plan` with a shard cache holding at most
    /// `cache_capacity` realisations (size it to the per-round cohort).
    pub fn lazy(plan: ShardPlan, cache_capacity: usize) -> Self {
        DataSource::Lazy {
            plan: Arc::new(plan),
            cache: ShardCache::new(cache_capacity),
        }
    }

    /// Number of devices the source covers.
    pub fn n_devices(&self) -> usize {
        match self {
            DataSource::Dense(shards) => shards.len(),
            DataSource::Lazy { plan, .. } => plan.n_devices(),
        }
    }

    /// `device`'s shard. Dense: a borrow (free). Lazy: an `Arc` clone on
    /// a cache hit (allocation-free), a realisation on a miss.
    pub fn shard(&self, device: usize) -> ShardRef<'_> {
        match self {
            DataSource::Dense(shards) => ShardRef::Borrowed(&shards[device]),
            DataSource::Lazy { plan, cache } => {
                ShardRef::Cached(cache.get_or_realise(device, || plan.realise(device)))
            }
        }
    }

    /// `device`'s sample count without realising features — O(1).
    pub fn shard_len(&self, device: usize) -> usize {
        match self {
            DataSource::Dense(shards) => shards[device].len(),
            DataSource::Lazy { plan, .. } => plan.shard_len(device),
        }
    }

    /// `device`'s class histogram without realising features —
    /// O(classes). Exactly equals `shard(device).class_histogram()`.
    pub fn class_histogram(&self, device: usize) -> Vec<usize> {
        match self {
            DataSource::Dense(shards) => shards[device].class_histogram(),
            DataSource::Lazy { plan, .. } => plan.class_histogram(device),
        }
    }

    /// The lazy plan, if any (bench/test hook for bit-identity checks).
    pub fn plan(&self) -> Option<&ShardPlan> {
        match self {
            DataSource::Lazy { plan, .. } => Some(plan),
            DataSource::Dense(_) => None,
        }
    }

    /// Cumulative shards realised (0 for dense).
    pub fn shards_realised(&self) -> u64 {
        match self {
            DataSource::Dense(_) => 0,
            DataSource::Lazy { cache, .. } => cache.miss_count(),
        }
    }

    /// Cumulative shard-cache hits (0 for dense).
    pub fn shard_cache_hits(&self) -> u64 {
        match self {
            DataSource::Dense(_) => 0,
            DataSource::Lazy { cache, .. } => cache.hit_count(),
        }
    }

    /// Cumulative shard-cache evictions (0 for dense).
    pub fn shard_cache_evictions(&self) -> u64 {
        match self {
            DataSource::Dense(_) => 0,
            DataSource::Lazy { cache, .. } => cache.eviction_count(),
        }
    }

    /// Bytes of cache-resident shard data (0 for dense — dense shards
    /// are owned by the source itself, not a cache).
    pub fn resident_shard_bytes(&self) -> u64 {
        match self {
            DataSource::Dense(_) => 0,
            DataSource::Lazy { cache, .. } => cache.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{InputKind, SynthConfig};

    fn plan() -> ShardPlan {
        ShardPlan::new(
            SynthConfig {
                classes: 4,
                input: InputKind::Flat { dim: 6 },
                train_per_class: 10,
                test_per_class: 4,
                separation: 2.0,
                noise: 1.0,
                seed: 11,
            },
            32,
            0.5,
            8,
            24,
        )
    }

    #[test]
    fn lazy_source_matches_dense_materialisation() {
        let p = plan();
        let dense = DataSource::Dense(p.realise_all());
        let lazy = DataSource::lazy(p, 64);
        assert_eq!(dense.n_devices(), lazy.n_devices());
        for d in 0..dense.n_devices() {
            let a = dense.shard(d);
            let b = lazy.shard(d);
            assert_eq!(a.x.data(), b.x.data(), "device {d}");
            assert_eq!(a.y, b.y, "device {d}");
            assert_eq!(dense.shard_len(d), lazy.shard_len(d));
            assert_eq!(dense.class_histogram(d), lazy.class_histogram(d));
        }
    }

    #[test]
    fn histograms_and_lengths_need_no_realisation() {
        let lazy = DataSource::lazy(plan(), 64);
        for d in 0..lazy.n_devices() {
            let h = lazy.class_histogram(d);
            assert_eq!(h.iter().sum::<usize>(), lazy.shard_len(d));
        }
        assert_eq!(lazy.shards_realised(), 0, "metadata queries must be free");
    }

    #[test]
    fn counters_track_cache_behaviour() {
        let lazy = DataSource::lazy(plan(), 64);
        let _ = lazy.shard(3);
        let _ = lazy.shard(3);
        let _ = lazy.shard(5);
        assert_eq!(lazy.shards_realised(), 2);
        assert_eq!(lazy.shard_cache_hits(), 1);
        assert!(lazy.resident_shard_bytes() > 0);
        let dense = DataSource::Dense(plan().realise_all());
        let _ = dense.shard(0);
        assert_eq!(dense.shards_realised(), 0);
        assert_eq!(dense.resident_shard_bytes(), 0);
    }
}
