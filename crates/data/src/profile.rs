//! Dataset profiles mirroring the paper's four benchmarks.

use serde::{Deserialize, Serialize};

use crate::synth::{InputKind, SynthConfig};

/// Experiment scale: full paper dimensions or a smoke-test reduction.
///
/// The paper trained on GPU servers; the reproduction's default targets a
/// 2-core CI machine, so [`Scale::Smoke`] shrinks feature dimensionality
/// and sample counts while [`Scale::Paper`] keeps the published ones.
/// Relative method ordering is preserved at either scale (EXPERIMENTS.md
/// records both where feasible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Published dimensionality (784-d MLP inputs, 16×16×3 images, 100
    /// devices).
    Paper,
    /// Reduced dimensionality for fast CI runs.
    Smoke,
}

/// The four benchmark datasets of the paper (synthetic stand-ins).
///
/// Difficulty is ordered `MnistLike < EmnistLike < Cifar10Like <
/// Cifar100Like` exactly as in the paper (§6.1), via decreasing class
/// separation and increasing class count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// 10-class, flat features, easy (stand-in for MNIST).
    MnistLike,
    /// 26-class, flat features, medium (stand-in for EMNIST-Letters).
    EmnistLike,
    /// 10-class, image features, hard (stand-in for CIFAR10).
    Cifar10Like,
    /// 100-class, image features, hardest (stand-in for CIFAR100).
    Cifar100Like,
}

impl DatasetProfile {
    /// All four profiles in the paper's order.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::MnistLike,
        DatasetProfile::EmnistLike,
        DatasetProfile::Cifar10Like,
        DatasetProfile::Cifar100Like,
    ];

    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetProfile::MnistLike => 10,
            DatasetProfile::EmnistLike => 26,
            DatasetProfile::Cifar10Like => 10,
            DatasetProfile::Cifar100Like => 100,
        }
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::MnistLike => "MNIST",
            DatasetProfile::EmnistLike => "EMNIST",
            DatasetProfile::Cifar10Like => "CIFAR-10",
            DatasetProfile::Cifar100Like => "CIFAR-100",
        }
    }

    /// Whether the profile uses image-shaped inputs (CNN models).
    pub fn is_image(&self) -> bool {
        matches!(
            self,
            DatasetProfile::Cifar10Like | DatasetProfile::Cifar100Like
        )
    }

    /// The paper's Table 1 target test accuracy for this dataset.
    ///
    /// These are the published targets (96% / 86% / 75% / 33%). At smoke
    /// scale the harness recalibrates targets from measured baseline
    /// ceilings; see `fedhisyn-bench`.
    pub fn paper_target_accuracy(&self) -> f32 {
        match self {
            DatasetProfile::MnistLike => 0.96,
            DatasetProfile::EmnistLike => 0.86,
            DatasetProfile::Cifar10Like => 0.75,
            DatasetProfile::Cifar100Like => 0.33,
        }
    }

    /// Synthesis configuration at a given scale.
    ///
    /// Separation constants are calibrated (see EXPERIMENTS.md §0) so the
    /// centralized accuracy *ceiling* of each task lands near the paper's
    /// final accuracies — MNIST ≈ 98%, EMNIST ≈ 88%, CIFAR10 ≈ 80%,
    /// CIFAR100 ≈ 40% — which is what makes the Table 1 targets and the
    /// difficulty ordering meaningful on synthetic stand-ins. Note the
    /// constants are not monotone across input kinds (image tasks need a
    /// larger raw separation to reach the same ceiling because pooling
    /// dilutes the per-pixel signal); difficulty is set by the resulting
    /// ceiling, not by the raw constant.
    pub fn synth_config(&self, scale: Scale, seed: u64) -> SynthConfig {
        let input = match (self.is_image(), scale) {
            (false, Scale::Paper) => InputKind::Flat { dim: 784 },
            (false, Scale::Smoke) => InputKind::Flat { dim: 32 },
            (true, Scale::Paper) => InputKind::Image {
                channels: 3,
                spatial: 16,
            },
            (true, Scale::Smoke) => InputKind::Image {
                channels: 3,
                spatial: 8,
            },
        };
        let separation = match self {
            DatasetProfile::MnistLike => 4.5,
            DatasetProfile::EmnistLike => 3.9,
            DatasetProfile::Cifar10Like => 3.6,
            DatasetProfile::Cifar100Like => 3.7,
        };
        let (train_per_class, test_per_class) = match (self, scale) {
            (DatasetProfile::Cifar100Like, Scale::Paper) => (500, 100),
            (DatasetProfile::Cifar100Like, Scale::Smoke) => (50, 10),
            (DatasetProfile::EmnistLike, Scale::Paper) => (1200, 300),
            (DatasetProfile::EmnistLike, Scale::Smoke) => (150, 40),
            (_, Scale::Paper) => (1200, 300),
            (_, Scale::Smoke) => (200, 50),
        };
        SynthConfig {
            classes: self.classes(),
            input,
            train_per_class,
            test_per_class,
            separation,
            noise: 1.0,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(DatasetProfile::MnistLike.classes(), 10);
        assert_eq!(DatasetProfile::EmnistLike.classes(), 26);
        assert_eq!(DatasetProfile::Cifar10Like.classes(), 10);
        assert_eq!(DatasetProfile::Cifar100Like.classes(), 100);
    }

    #[test]
    fn targets_match_table1() {
        assert_eq!(DatasetProfile::MnistLike.paper_target_accuracy(), 0.96);
        assert_eq!(DatasetProfile::EmnistLike.paper_target_accuracy(), 0.86);
        assert_eq!(DatasetProfile::Cifar10Like.paper_target_accuracy(), 0.75);
        assert_eq!(DatasetProfile::Cifar100Like.paper_target_accuracy(), 0.33);
    }

    #[test]
    fn difficulty_ordering_within_input_kind() {
        // Raw separation is only comparable within an input kind (images
        // need more separation for the same ceiling); check the orderings
        // that are meaningful.
        let sep = |p: DatasetProfile| p.synth_config(Scale::Smoke, 0).separation;
        // Flat: MNIST easier than EMNIST (larger separation, fewer classes).
        assert!(sep(DatasetProfile::MnistLike) > sep(DatasetProfile::EmnistLike));
        // Image: CIFAR100 is harder via 10x the classes and far fewer
        // samples per class, not via separation.
        assert!(DatasetProfile::Cifar100Like.classes() > DatasetProfile::Cifar10Like.classes());
        let c100 = DatasetProfile::Cifar100Like.synth_config(Scale::Smoke, 0);
        let c10 = DatasetProfile::Cifar10Like.synth_config(Scale::Smoke, 0);
        assert!(c100.train_per_class < c10.train_per_class);
    }

    #[test]
    fn image_flag() {
        assert!(!DatasetProfile::MnistLike.is_image());
        assert!(DatasetProfile::Cifar100Like.is_image());
    }

    #[test]
    fn smoke_configs_are_smaller() {
        for p in DatasetProfile::ALL {
            let paper = p.synth_config(Scale::Paper, 0);
            let smoke = p.synth_config(Scale::Smoke, 0);
            assert!(smoke.train_per_class < paper.train_per_class);
            assert!(smoke.total_input_dim() <= paper.total_input_dim());
        }
    }
}
