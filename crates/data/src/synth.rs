//! Class-conditional synthetic data generation.
//!
//! Each class gets a prototype vector of norm `separation`; samples are
//! `prototype + N(0, noise²)` draws. Because random prototypes in high
//! dimension are near-orthogonal, the pairwise class distance is
//! `≈ separation·√2`, so the Bayes error — and therefore each profile's
//! accuracy *ceiling* — is controlled by the `separation / noise` ratio.
//! That ceiling is how the reproduction recreates the paper's difficulty
//! ordering (MNIST ≈ 98% … CIFAR100 ≈ 42%) without the original pixels.
//!
//! Image profiles build prototypes by bilinearly upsampling a low-res
//! random field, giving them the spatial smoothness that convolutional
//! models exploit.

use fedhisyn_tensor::{fill_normal, rng_from_seed, Tensor};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Shape of the per-sample input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputKind {
    /// Flat feature vector (MLP models).
    Flat {
        /// Feature dimension.
        dim: usize,
    },
    /// Square image (CNN models).
    Image {
        /// Channel count.
        channels: usize,
        /// Spatial size (square).
        spatial: usize,
    },
}

impl InputKind {
    /// Per-sample dims (excluding batch).
    pub fn sample_dims(&self) -> Vec<usize> {
        match self {
            InputKind::Flat { dim } => vec![*dim],
            InputKind::Image { channels, spatial } => vec![*channels, *spatial, *spatial],
        }
    }

    /// Total features per sample.
    pub fn total_dim(&self) -> usize {
        self.sample_dims().iter().product()
    }
}

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Input shape.
    pub input: InputKind,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Prototype norm; larger ⇒ easier task.
    pub separation: f32,
    /// Per-feature Gaussian noise std.
    pub noise: f32,
    /// Seed for prototypes and samples.
    pub seed: u64,
}

impl SynthConfig {
    /// Total features per sample.
    pub fn total_input_dim(&self) -> usize {
        self.input.total_dim()
    }

    /// Generate the pooled train and test datasets.
    pub fn generate(&self) -> FederatedDataset {
        assert!(self.classes > 0 && self.train_per_class > 0 && self.test_per_class > 0);
        let mut rng = rng_from_seed(self.seed);
        let protos = self.prototypes(&mut rng);
        let train = self.sample_split(&protos, self.train_per_class, &mut rng);
        let test = self.sample_split(&protos, self.test_per_class, &mut rng);
        FederatedDataset {
            train,
            test,
            config: *self,
        }
    }

    /// The class prototypes this config generates — the exact draws
    /// [`SynthConfig::generate`] starts from, exposed so a lazy
    /// [`crate::ShardPlan`] can share them without materialising the
    /// pooled splits.
    pub fn class_prototypes(&self) -> Vec<Vec<f32>> {
        let mut rng = rng_from_seed(self.seed);
        self.prototypes(&mut rng)
    }

    /// One prototype per class, each of norm `separation`.
    fn prototypes<R: Rng>(&self, rng: &mut R) -> Vec<Vec<f32>> {
        let d = self.total_input_dim();
        (0..self.classes)
            .map(|_| {
                let mut p = match self.input {
                    InputKind::Flat { dim } => {
                        let mut v = vec![0.0f32; dim];
                        fill_normal(&mut v, 0.0, 1.0, rng);
                        v
                    }
                    InputKind::Image { channels, spatial } => {
                        // Smooth field: low-res noise, bilinear upsample.
                        let low = 4.min(spatial);
                        let mut v = Vec::with_capacity(channels * spatial * spatial);
                        for _ in 0..channels {
                            let mut grid = vec![0.0f32; low * low];
                            fill_normal(&mut grid, 0.0, 1.0, rng);
                            v.extend(bilinear_upsample(&grid, low, spatial));
                        }
                        v
                    }
                };
                debug_assert_eq!(p.len(), d);
                let norm = p.iter().map(|&x| x * x).sum::<f32>().sqrt().max(1e-6);
                let scale = self.separation / norm;
                for x in p.iter_mut() {
                    *x *= scale;
                }
                p
            })
            .collect()
    }

    pub(crate) fn sample_split<R: Rng>(
        &self,
        protos: &[Vec<f32>],
        per_class: usize,
        rng: &mut R,
    ) -> Dataset {
        let d = self.total_input_dim();
        let n = per_class * self.classes;
        let mut data = vec![0.0f32; n * d];
        let mut labels = Vec::with_capacity(n);
        // Interleave classes, then shuffle sample order.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for (slot, &pos) in order.iter().enumerate() {
            let class = pos % self.classes;
            labels.push(class);
            let row = &mut data[slot * d..(slot + 1) * d];
            fill_normal(row, 0.0, self.noise, rng);
            for (x, &p) in row.iter_mut().zip(&protos[class]) {
                *x += p;
            }
        }
        let mut dims = vec![n];
        dims.extend(self.input.sample_dims());
        Dataset::new(
            Tensor::from_vec(dims, data).expect("synth shape"),
            labels,
            self.classes,
        )
    }
}

/// A pooled synthetic dataset plus its generation config.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// Pooled training split (to be partitioned across devices).
    pub train: Dataset,
    /// Global test split, identically distributed with training data —
    /// the paper's evaluation assumption (§3.2).
    pub test: Dataset,
    /// Generation parameters.
    pub config: SynthConfig,
}

/// Bilinear upsample of a square `low×low` grid to `size×size`.
fn bilinear_upsample(grid: &[f32], low: usize, size: usize) -> Vec<f32> {
    assert_eq!(grid.len(), low * low);
    if low == size {
        return grid.to_vec();
    }
    let mut out = vec![0.0f32; size * size];
    let scale = if size > 1 {
        (low - 1) as f32 / (size - 1) as f32
    } else {
        0.0
    };
    for y in 0..size {
        let fy = y as f32 * scale;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(low - 1);
        let wy = fy - y0 as f32;
        for x in 0..size {
            let fx = x as f32 * scale;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(low - 1);
            let wx = fx - x0 as f32;
            let top = grid[y0 * low + x0] * (1.0 - wx) + grid[y0 * low + x1] * wx;
            let bot = grid[y1 * low + x0] * (1.0 - wx) + grid[y1 * low + x1] * wx;
            out[y * size + x] = top * (1.0 - wy) + bot * wy;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_config() -> SynthConfig {
        SynthConfig {
            classes: 4,
            input: InputKind::Flat { dim: 16 },
            train_per_class: 25,
            test_per_class: 10,
            separation: 2.0,
            noise: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn generates_expected_counts() {
        let fd = flat_config().generate();
        assert_eq!(fd.train.len(), 100);
        assert_eq!(fd.test.len(), 40);
        assert_eq!(fd.train.class_histogram(), vec![25; 4]);
        assert_eq!(fd.test.class_histogram(), vec![10; 4]);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = flat_config().generate();
        let b = flat_config().generate();
        assert_eq!(a.train.x.data(), b.train.x.data());
        assert_eq!(a.train.y, b.train.y);
    }

    #[test]
    fn different_seeds_differ() {
        let a = flat_config().generate();
        let mut cfg = flat_config();
        cfg.seed = 8;
        let b = cfg.generate();
        assert_ne!(a.train.x.data(), b.train.x.data());
    }

    #[test]
    fn labels_are_shuffled_not_sorted() {
        let fd = flat_config().generate();
        let sorted = {
            let mut s = fd.train.y.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(fd.train.y, sorted, "labels should be interleaved");
    }

    #[test]
    fn image_samples_have_image_shape() {
        let cfg = SynthConfig {
            classes: 3,
            input: InputKind::Image {
                channels: 3,
                spatial: 8,
            },
            train_per_class: 5,
            test_per_class: 2,
            separation: 1.0,
            noise: 1.0,
            seed: 1,
        };
        let fd = cfg.generate();
        assert_eq!(fd.train.x.shape(), &[15, 3, 8, 8]);
        assert_eq!(fd.test.x.shape(), &[6, 3, 8, 8]);
    }

    #[test]
    fn class_means_are_separated() {
        let cfg = flat_config();
        let fd = cfg.generate();
        let d = cfg.total_input_dim();
        // Empirical class means should be ~separation·√2 apart.
        let mean_of = |class: usize| -> Vec<f32> {
            let mut m = vec![0.0f32; d];
            let mut count = 0;
            for (i, &y) in fd.train.y.iter().enumerate() {
                if y == class {
                    for (mm, &x) in m.iter_mut().zip(&fd.train.x.data()[i * d..(i + 1) * d]) {
                        *mm += x;
                    }
                    count += 1;
                }
            }
            for mm in m.iter_mut() {
                *mm /= count as f32;
            }
            m
        };
        let m0 = mean_of(0);
        let m1 = mean_of(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let expect = cfg.separation * std::f32::consts::SQRT_2;
        assert!(
            (dist - expect).abs() < expect, // loose: sampling noise on 25 samples
            "class mean distance {dist}, expected about {expect}"
        );
        assert!(dist > 0.5, "classes must be separated");
    }

    #[test]
    fn upsample_preserves_constant_fields() {
        let grid = vec![3.0f32; 16];
        let up = bilinear_upsample(&grid, 4, 9);
        assert!(up.iter().all(|&x| (x - 3.0).abs() < 1e-6));
    }

    #[test]
    fn upsample_interpolates_monotone_ramp() {
        // 2x2 ramp: corners 0,1,0,1 -> middle column should be 0.5.
        let grid = vec![0.0f32, 1.0, 0.0, 1.0];
        let up = bilinear_upsample(&grid, 2, 3);
        assert!((up[1] - 0.5).abs() < 1e-6);
        assert!((up[4] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn upsample_identity_when_sizes_match() {
        let grid = vec![1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(bilinear_upsample(&grid, 2, 2), grid);
    }
}
