//! Label-skew statistics, including the paper's Eq. 4 divergence.

use crate::dataset::Dataset;

/// The paper's Eq. 4 divergence:
/// `D = Σ_i Σ_j | p_i(y = j) − p(y = j) |`
/// summed over devices `i` and classes `j`, where `p_i` is the label
/// distribution on device `i` and `p` is the global distribution.
///
/// Larger `D` means the device shards are further from the pooled
/// distribution, which the paper links to lower final accuracy (§3.2).
pub fn label_divergence(global: &Dataset, device_indices: &[Vec<usize>]) -> f64 {
    let p_global = global.label_distribution();
    let mut total = 0.0f64;
    for indices in device_indices {
        let shard = global.subset(indices);
        let p_dev = shard.label_distribution();
        for (pd, pg) in p_dev.iter().zip(&p_global) {
            total += (pd - pg).abs();
        }
    }
    total
}

/// Mean per-device divergence (Eq. 4 normalized by device count), which is
/// comparable across different federation sizes.
pub fn mean_label_divergence(global: &Dataset, device_indices: &[Vec<usize>]) -> f64 {
    if device_indices.is_empty() {
        return 0.0;
    }
    label_divergence(global, device_indices) / device_indices.len() as f64
}

/// Summary of a federated partition, used by experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSummary {
    /// Number of devices.
    pub devices: usize,
    /// Samples on the smallest device.
    pub min_samples: usize,
    /// Samples on the largest device.
    pub max_samples: usize,
    /// Mean samples per device.
    pub mean_samples: f64,
    /// Eq. 4 divergence (total over devices).
    pub divergence: f64,
    /// Mean number of distinct classes held per device.
    pub mean_classes_per_device: f64,
}

/// Compute a [`PartitionSummary`] for device index lists over `global`.
pub fn summarize_partition(global: &Dataset, device_indices: &[Vec<usize>]) -> PartitionSummary {
    let devices = device_indices.len();
    let sizes: Vec<usize> = device_indices.iter().map(|d| d.len()).collect();
    let total: usize = sizes.iter().sum();
    let mean_classes = if devices == 0 {
        0.0
    } else {
        device_indices
            .iter()
            .map(|idx| {
                global
                    .subset(idx)
                    .class_histogram()
                    .iter()
                    .filter(|&&c| c > 0)
                    .count() as f64
            })
            .sum::<f64>()
            / devices as f64
    };
    PartitionSummary {
        devices,
        min_samples: sizes.iter().copied().min().unwrap_or(0),
        max_samples: sizes.iter().copied().max().unwrap_or(0),
        mean_samples: if devices == 0 {
            0.0
        } else {
            total as f64 / devices as f64
        },
        divergence: label_divergence(global, device_indices),
        mean_classes_per_device: mean_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_indices, Partition};
    use fedhisyn_tensor::{rng_from_seed, Tensor};

    fn dataset(n: usize, classes: usize) -> Dataset {
        let x = Tensor::zeros(vec![n, 2]);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, y, classes)
    }

    #[test]
    fn perfectly_iid_partition_has_zero_divergence() {
        let d = dataset(40, 4);
        // Hand-build shards with the exact global distribution.
        let mut parts = vec![Vec::new(); 4];
        for i in 0..40 {
            parts[(i / 4) % 4].push(i);
        }
        let div = label_divergence(&d, &parts);
        assert!(div < 1e-9, "divergence {div}");
    }

    #[test]
    fn single_class_devices_have_max_divergence() {
        let d = dataset(40, 4);
        // Each device holds exactly one class.
        let mut parts = vec![Vec::new(); 4];
        for i in 0..40 {
            parts[d.y[i]].push(i);
        }
        // Per device: |1 − 0.25| + 3·|0 − 0.25| = 1.5; total = 6.
        let div = label_divergence(&d, &parts);
        assert!((div - 6.0).abs() < 1e-9, "divergence {div}");
    }

    #[test]
    fn dirichlet_divergence_decreases_with_beta() {
        let d = dataset(2000, 10);
        let avg = |beta: f64| -> f64 {
            (0..5)
                .map(|s| {
                    let mut rng = rng_from_seed(s);
                    let parts = partition_indices(&d, 10, Partition::Dirichlet { beta }, &mut rng);
                    mean_label_divergence(&d, &parts)
                })
                .sum::<f64>()
                / 5.0
        };
        let skewed = avg(0.1);
        let mild = avg(10.0);
        assert!(
            skewed > mild,
            "Dir(0.1)={skewed} should exceed Dir(10)={mild}"
        );
    }

    #[test]
    fn summary_reports_sizes() {
        let d = dataset(30, 3);
        let parts = vec![
            (0..10).collect::<Vec<_>>(),
            (10..15).collect(),
            (15..30).collect(),
        ];
        let s = summarize_partition(&d, &parts);
        assert_eq!(s.devices, 3);
        assert_eq!(s.min_samples, 5);
        assert_eq!(s.max_samples, 15);
        assert!((s.mean_samples - 10.0).abs() < 1e-9);
        assert!(s.mean_classes_per_device > 0.0);
    }

    #[test]
    fn empty_partition_list() {
        let d = dataset(10, 2);
        assert_eq!(mean_label_divergence(&d, &[]), 0.0);
        let s = summarize_partition(&d, &[]);
        assert_eq!(s.devices, 0);
        assert_eq!(s.max_samples, 0);
    }
}
