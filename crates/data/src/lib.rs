//! Synthetic federated datasets for the FedHiSyn reproduction.
//!
//! The paper evaluates on MNIST, EMNIST-Letters, CIFAR10 and CIFAR100.
//! Those archives are not available in this offline environment, so this
//! crate synthesizes class-conditional datasets with matched *structure*:
//! the same class counts, comparable dimensionality, and a difficulty
//! ordering MNIST < EMNIST < CIFAR10 < CIFAR100 controlled by prototype
//! separation and noise (see DESIGN.md §4 for why this preserves the
//! behaviours the paper measures).
//!
//! The crate also implements the paper's data-heterogeneity machinery:
//!
//! * [`Partition::Iid`] — uniform random split across devices,
//! * [`Partition::Dirichlet`] — label-skew `Dir(β)` split (the paper's
//!   Non-IID setting, following Li et al., "Federated Learning on Non-IID
//!   Data Silos"),
//! * [`Partition::Shards`] — McMahan-style pathological split,
//!
//! plus the Eq. 4 label-divergence statistic used in the paper's §3.2
//! motivation.

pub mod dataset;
pub mod partition;
pub mod profile;
pub mod shard;
pub mod source;
pub mod stats;
pub mod synth;

pub use dataset::Dataset;
pub use partition::{partition_indices, Partition};
pub use profile::{DatasetProfile, Scale};
pub use shard::{ShardCache, ShardPlan};
pub use source::{DataSource, ShardRef};
pub use synth::{FederatedDataset, SynthConfig};
