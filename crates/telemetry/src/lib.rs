//! Workspace-wide instrumentation: lock-free metrics, round-lifecycle
//! spans on a deterministic virtual clock, and Perfetto-loadable trace
//! export.
//!
//! The workspace's observability was a patchwork of one-off counters
//! (traffic meter, engine cache stats, fleet shard touches, panel pack
//! counts, arena high-water marks), none correlated in time. This crate
//! unifies them behind three pieces:
//!
//! * [`MetricsRegistry`] — pre-registered counters / gauges / histograms
//!   on plain atomics; all storage is allocated at registration, so the
//!   hot path never allocates and never locks.
//! * [`TelemetrySink`] — a cloneable handle carried by `FlEnv`. Disabled
//!   (the default) it is a `None` and every call is an inlined branch:
//!   the steady-state round stays **zero-alloc**, certified by the
//!   counting-allocator harness. Enabled, it records [`SpanEvent`]s
//!   stamped with both **virtual time** (pure function of the seed,
//!   covered by the determinism contract) and **wall-clock time**
//!   (profiling only, masked from every determinism comparison).
//! * exporters — [`chrome_trace_string`] (open in
//!   <https://ui.perfetto.dev>), [`jsonl_string`], and the per-round
//!   [`RoundTelemetry`] snapshot folded into run records.

mod export;
mod registry;
mod round;
mod span;

pub use export::{
    chrome_trace_string, export_trace, jsonl_string, validate_chrome_trace, TraceSummary,
    PID_VIRTUAL, PID_WALL,
};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use round::RoundTelemetry;
pub use span::{
    Phase, RuntimeGauges, SpanCtx, SpanEvent, Telemetry, TelemetrySink, TransportCounters,
    WallStart, NO_ID,
};
