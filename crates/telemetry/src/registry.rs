//! Lock-free metrics registry.
//!
//! All storage is allocated at **registration time**; the hot path only
//! touches pre-sized atomic cells, so recording a metric never allocates
//! and never takes a lock. Three metric kinds:
//!
//! * **counters** — monotone `u64`, relaxed `fetch_add`;
//! * **gauges** — last-written (or running-max) `u64`, excluded from the
//!   determinism fingerprint because they observe runtime state (cache
//!   occupancy, arena high-water) that legitimately varies across hosts;
//! * **histograms** — fixed bucket bounds chosen at registration, one
//!   atomic count per bucket plus a CAS-accumulated `f64` sum.
//!
//! Counter and histogram contents are pure functions of the simulated
//! workload, so they participate in the deterministic fingerprint used by
//! the telemetry determinism tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to a registered counter (index into the registry, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug)]
struct Cell {
    name: &'static str,
    value: AtomicU64,
}

impl Cell {
    fn new(name: &'static str) -> Self {
        Cell {
            name,
            value: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct HistogramCell {
    name: &'static str,
    /// Upper bucket bounds (ascending); an implicit overflow bucket
    /// catches everything above the last bound.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits, CAS-accumulated.
    sum_bits: AtomicU64,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Upper bucket bounds (ascending), overflow bucket implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge, in registration order.
    pub gauges: Vec<(&'static str, u64)>,
    /// One snapshot per histogram, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Pre-registered metric storage; see the module docs for the contract.
///
/// Registration takes `&mut self` (setup phase); recording takes `&self`
/// and is safe from any thread.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<Cell>,
    gauges: Vec<Cell>,
    histograms: Vec<HistogramCell>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a monotone counter.
    pub fn register_counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push(Cell::new(name));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn register_gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push(Cell::new(name));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram with fixed ascending bucket bounds.
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) -> HistogramId {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        self.histograms.push(HistogramCell {
            name,
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Add `n` to a counter (relaxed; no lock, no allocation).
    #[inline]
    pub fn inc(&self, id: CounterId, n: u64) {
        self.counters[id.0].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0].value.load(Ordering::Relaxed)
    }

    /// Overwrite a gauge.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        self.gauges[id.0].value.store(v, Ordering::Relaxed);
    }

    /// Raise a gauge to at least `v` (running maximum).
    #[inline]
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.gauges[id.0].value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].value.load(Ordering::Relaxed)
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, id: HistogramId, v: f64) {
        let h = &self.histograms[id.0];
        let bucket = h.bounds.partition_point(|&b| v > b);
        h.counts[bucket].fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match h
                .sum_bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Copy out every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| (c.name, c.value.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|c| (c.name, c.value.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSnapshot {
                    name: h.name,
                    bounds: h.bounds.clone(),
                    counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                    sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                })
                .collect(),
        }
    }

    /// FNV-1a fingerprint of the **deterministic** metrics: counters and
    /// histograms only. Gauges observe host-dependent runtime state and
    /// are excluded from the determinism contract.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for c in &self.counters {
            h.str(c.name);
            h.u64(c.value.load(Ordering::Relaxed));
        }
        for hist in &self.histograms {
            h.str(hist.name);
            for b in &hist.bounds {
                h.u64(b.to_bits());
            }
            for c in &hist.counts {
                h.u64(c.load(Ordering::Relaxed));
            }
            h.u64(hist.sum_bits.load(Ordering::Relaxed));
        }
        h.finish()
    }
}

/// Minimal FNV-1a accumulator shared by the fingerprint paths.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        let c = r.register_counter("c");
        let g = r.register_gauge("g");
        r.inc(c, 3);
        r.inc(c, 4);
        r.gauge_set(g, 10);
        r.gauge_max(g, 7);
        r.gauge_max(g, 12);
        assert_eq!(r.counter(c), 7);
        assert_eq!(r.gauge(g), 12);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("c", 7)]);
        assert_eq!(s.gauges, vec![("g", 12)]);
    }

    #[test]
    fn histogram_buckets() {
        let mut r = MetricsRegistry::new();
        let h = r.register_histogram("h", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            r.observe(h, v);
        }
        let s = &r.snapshot().histograms[0];
        // <=1.0: {0.5, 1.0}; <=2.0: {1.5}; <=4.0: {3.0}; overflow: {100.0}
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.sum, 106.0);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn gauges_excluded_from_fingerprint() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let (ca, ga) = (a.register_counter("c"), a.register_gauge("g"));
        let (cb, gb) = (b.register_counter("c"), b.register_gauge("g"));
        a.inc(ca, 5);
        b.inc(cb, 5);
        a.gauge_set(ga, 1);
        b.gauge_set(gb, 999);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.inc(cb, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn concurrent_increments() {
        use std::sync::Arc;
        let mut r = MetricsRegistry::new();
        let c = r.register_counter("c");
        let h = r.register_histogram("h", &[10.0]);
        let r = Arc::new(r);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.inc(c, 1);
                        r.observe(h, 1.0);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().expect("thread panicked");
        }
        assert_eq!(r.counter(c), 4000);
        let s = &r.snapshot().histograms[0];
        assert_eq!(s.total(), 4000);
        assert_eq!(s.sum, 4000.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        MetricsRegistry::new().register_histogram("bad", &[2.0, 1.0]);
    }
}
