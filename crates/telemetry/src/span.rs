//! Round-lifecycle spans and the `TelemetrySink` handle.
//!
//! Every span carries **two clocks**:
//!
//! * **virtual time** (`vt_start`/`vt_end`, simulated seconds) — a pure
//!   function of the experiment seed, bit-identical across runs and
//!   across Cached/Reference execution modes; this is the clock the
//!   determinism contract covers;
//! * **wall-clock time** (`wall_start_ns`/`wall_end_ns`, nanoseconds
//!   since the sink's epoch) — real elapsed time for profiling, *excluded*
//!   from every determinism comparison.
//!
//! The sink is a cheap cloneable handle. Disabled (the default for every
//! `FlEnv`) it is a `None` and each call is an inlined branch on it — no
//! clock reads, no atomics, no allocation, so the counting-allocator
//! harness still certifies steady-state rounds as zero-alloc. Enabled, it
//! appends `Copy` events into a buffer whose capacity was reserved up
//! front (events beyond capacity are counted, not stored) and bumps
//! pre-registered metrics, so even the enabled hot path never allocates.

use crate::registry::{CounterId, Fnv, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel for span fields that do not apply (no lane, no device).
pub const NO_ID: u32 = u32::MAX;

/// Lifecycle phase a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// One full federated round (clustering through evaluation).
    Round = 0,
    /// Latency-profile clustering of the sampled cohort.
    Clustering = 1,
    /// One class ring's interval simulation (a lane of the round).
    RingInterval = 2,
    /// A device→device model relay inside a ring.
    RelayHop = 3,
    /// One device's local training step inside a ring.
    LocalTrain = 4,
    /// Server-side aggregation of surviving ring models.
    Aggregation = 5,
    /// Centralised test-set evaluation of the aggregated model.
    Evaluation = 6,
    /// One retransmission attempt of a relay hop after a transport fault
    /// (loss/corruption/timeout). Absent in fault-free runs — the
    /// delivered attempt is covered by [`Phase::RelayHop`].
    RelayAttempt = 7,
}

impl Phase {
    /// Number of phases (array-index bound).
    pub const COUNT: usize = 8;

    /// All phases, in discriminant order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Round,
        Phase::Clustering,
        Phase::RingInterval,
        Phase::RelayHop,
        Phase::LocalTrain,
        Phase::Aggregation,
        Phase::Evaluation,
        Phase::RelayAttempt,
    ];

    /// Stable snake_case name (used as trace-event name and metric key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::Clustering => "clustering",
            Phase::RingInterval => "ring_interval",
            Phase::RelayHop => "relay_hop",
            Phase::LocalTrain => "local_train",
            Phase::Aggregation => "aggregation",
            Phase::Evaluation => "evaluation",
            Phase::RelayAttempt => "relay_attempt",
        }
    }
}

/// One recorded span. `Copy` so the hot path moves it by value into the
/// pre-reserved buffer without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Lifecycle phase.
    pub phase: Phase,
    /// Federated round index.
    pub round: u32,
    /// Sub-round lane (class-ring index), or [`NO_ID`].
    pub lane: u32,
    /// Device id, or [`NO_ID`] for round/lane-level spans.
    pub device: u32,
    /// Disambiguator within `(round, lane, device)` — step or hop index.
    pub seq: u32,
    /// Virtual start time, simulated seconds (deterministic).
    pub vt_start: f64,
    /// Virtual end time, simulated seconds (deterministic).
    pub vt_end: f64,
    /// Wall-clock start, ns since sink epoch (non-deterministic).
    pub wall_start_ns: u64,
    /// Wall-clock end, ns since sink epoch (non-deterministic).
    pub wall_end_ns: u64,
}

impl SpanEvent {
    /// The event with wall-clock fields zeroed — the shape every
    /// determinism comparison uses.
    pub fn masked(mut self) -> SpanEvent {
        self.wall_start_ns = 0;
        self.wall_end_ns = 0;
        self
    }
}

/// Identity of a span below the round level.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx {
    /// Sub-round lane (class-ring index), or [`NO_ID`].
    pub lane: u32,
    /// Device id, or [`NO_ID`].
    pub device: u32,
    /// Disambiguator within `(round, lane, device)`.
    pub seq: u32,
}

impl SpanCtx {
    /// Round-level span: no lane, no device.
    pub const ROOT: SpanCtx = SpanCtx {
        lane: NO_ID,
        device: NO_ID,
        seq: 0,
    };

    /// Lane-level span (one class ring).
    pub fn lane(lane: u32) -> SpanCtx {
        SpanCtx {
            lane,
            device: NO_ID,
            seq: 0,
        }
    }

    /// Device-level span inside a lane.
    pub fn device(lane: u32, device: u32, seq: u32) -> SpanCtx {
        SpanCtx { lane, device, seq }
    }
}

/// Wall-clock anchor returned by [`TelemetrySink::wall_start`]; `None`
/// when the sink is disabled so no clock is ever read.
#[derive(Debug, Clone, Copy)]
pub struct WallStart(Option<Instant>);

/// Runtime gauge bundle folded once per round (see
/// [`TelemetrySink::update_gauges`]). All fields are best-effort runtime
/// observations outside the determinism contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeGauges {
    /// Peak arena bytes across cached models.
    pub arena_high_water_bytes: u64,
    /// Cumulative GEMM panel packs across cached model layers.
    pub weight_packs: u64,
    /// Process-wide engine cache hits.
    pub cache_hits: u64,
    /// Process-wide engine cache misses.
    pub cache_misses: u64,
    /// Devices with realised fleet trajectories.
    pub fleet_realised_devices: u64,
    /// Bytes of realised fleet trajectory state.
    pub fleet_realised_state_bytes: u64,
    /// Cumulative fleet shard queries.
    pub fleet_shard_touches: u64,
    /// Cumulative data shards realised (lazy data plane).
    pub data_shards_realised: u64,
    /// Cumulative shard-cache hits (lazy data plane).
    pub data_shard_cache_hits: u64,
    /// Bytes of cache-resident realised shard data.
    pub data_resident_shard_bytes: u64,
}

/// Transport-fault counter bundle folded once per round (see
/// [`TelemetrySink::add_transport`]). All fields are *increments*: the
/// sink adds them to its cumulative `transport.*` counters.
///
/// Unlike [`RuntimeGauges`], every field here is deterministic — transport
/// faults are drawn from the seed — but they are still recorded as plain
/// counters (covered by the metrics fingerprint) rather than spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Retransmission attempts after a loss/corruption/timeout.
    pub retries: u64,
    /// Frames whose wire checksum failed on receive.
    pub corruptions_detected: u64,
    /// Transient transport timeouts.
    pub timeouts: u64,
    /// Transfers abandoned after the retry budget was exhausted.
    pub giveups: u64,
    /// Rings proactively rebuilt around suspect devices.
    pub rebuilds: u64,
}

#[derive(Debug)]
struct EventLog {
    events: Vec<SpanEvent>,
    capacity: usize,
}

/// Ids of the metrics the sink maintains centrally.
#[derive(Debug)]
struct WellKnown {
    /// Spans recorded, per phase.
    phase_counts: [CounterId; Phase::COUNT],
    /// Virtual-duration histograms for the timed phases.
    vt_local_train: HistogramId,
    vt_relay_hop: HistogramId,
    vt_ring_interval: HistogramId,
    /// Spans dropped because the event buffer was full.
    spans_dropped: CounterId,
    transport: WellKnownTransport,
    codec: WellKnownCodec,
    gauges: WellKnownGauges,
}

/// Counter ids for the fault-injection transport (see
/// [`TelemetrySink::add_transport`]).
#[derive(Debug)]
struct WellKnownTransport {
    retries: CounterId,
    corruptions_detected: CounterId,
    timeouts: CounterId,
    giveups: CounterId,
    rebuilds: CounterId,
}

/// Counter ids for the wire-codec byte ledgers (see
/// [`TelemetrySink::add_codec_bytes`]).
#[derive(Debug)]
struct WellKnownCodec {
    encoded_bytes: CounterId,
    raw_bytes: CounterId,
}

#[derive(Debug)]
struct WellKnownGauges {
    arena_high_water_bytes: GaugeId,
    weight_packs: GaugeId,
    cache_hits: GaugeId,
    cache_misses: GaugeId,
    fleet_realised_devices: GaugeId,
    fleet_realised_state_bytes: GaugeId,
    fleet_shard_touches: GaugeId,
    data_shards_realised: GaugeId,
    data_shard_cache_hits: GaugeId,
    data_resident_shard_bytes: GaugeId,
}

/// Backing store behind an enabled [`TelemetrySink`].
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    log: Mutex<EventLog>,
    dropped: AtomicU64,
    registry: MetricsRegistry,
    ids: WellKnown,
}

/// Virtual-duration histogram bounds, in simulated seconds. Device
/// latencies in the workspace's profiles run from sub-second to tens of
/// seconds per step.
const VT_BOUNDS: [f64; 8] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

impl Telemetry {
    fn new(capacity: usize) -> Self {
        let mut registry = MetricsRegistry::new();
        let phase_counts = [
            registry.register_counter("spans.round"),
            registry.register_counter("spans.clustering"),
            registry.register_counter("spans.ring_interval"),
            registry.register_counter("spans.relay_hop"),
            registry.register_counter("spans.local_train"),
            registry.register_counter("spans.aggregation"),
            registry.register_counter("spans.evaluation"),
            registry.register_counter("spans.relay_attempt"),
        ];
        let ids = WellKnown {
            phase_counts,
            vt_local_train: registry.register_histogram("vt.local_train_seconds", &VT_BOUNDS),
            vt_relay_hop: registry.register_histogram("vt.relay_hop_seconds", &VT_BOUNDS),
            vt_ring_interval: registry.register_histogram("vt.ring_interval_seconds", &VT_BOUNDS),
            spans_dropped: registry.register_counter("spans.dropped"),
            transport: WellKnownTransport {
                retries: registry.register_counter("transport.retries"),
                corruptions_detected: registry.register_counter("transport.corruptions_detected"),
                timeouts: registry.register_counter("transport.timeouts"),
                giveups: registry.register_counter("transport.giveups"),
                rebuilds: registry.register_counter("transport.rebuilds"),
            },
            codec: WellKnownCodec {
                encoded_bytes: registry.register_counter("wire.codec.encoded_bytes"),
                raw_bytes: registry.register_counter("wire.codec.raw_bytes"),
            },
            gauges: WellKnownGauges {
                arena_high_water_bytes: registry.register_gauge("engine.arena_high_water_bytes"),
                weight_packs: registry.register_gauge("engine.weight_packs"),
                cache_hits: registry.register_gauge("engine.cache_hits"),
                cache_misses: registry.register_gauge("engine.cache_misses"),
                fleet_realised_devices: registry.register_gauge("fleet.realised_devices"),
                fleet_realised_state_bytes: registry.register_gauge("fleet.realised_state_bytes"),
                fleet_shard_touches: registry.register_gauge("fleet.shard_touches"),
                data_shards_realised: registry.register_gauge("data.shards_realised"),
                data_shard_cache_hits: registry.register_gauge("data.shard_cache_hits"),
                data_resident_shard_bytes: registry.register_gauge("data.resident_shard_bytes"),
            },
        };
        Telemetry {
            epoch: Instant::now(),
            log: Mutex::new(EventLog {
                events: Vec::with_capacity(capacity),
                capacity,
            }),
            dropped: AtomicU64::new(0),
            registry,
            ids,
        }
    }

    /// The metrics registry (for ad-hoc registration or inspection).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Copy of every recorded span, in record order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.log
            .lock()
            .expect("telemetry log poisoned")
            .events
            .clone()
    }

    /// Spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of every metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The recorded spans in their canonical deterministic order —
    /// sorted by `(round, phase, lane, device, seq, vt bits)` with
    /// wall-clock fields zeroed. Ring lanes run on rayon workers, so raw
    /// record order is scheduler-dependent; this ordering is not.
    pub fn deterministic_stream(&self) -> Vec<SpanEvent> {
        let mut evs: Vec<SpanEvent> = self.events().into_iter().map(SpanEvent::masked).collect();
        evs.sort_by_key(|e| {
            (
                e.round,
                e.phase as u8,
                e.lane,
                e.device,
                e.seq,
                e.vt_start.to_bits(),
                e.vt_end.to_bits(),
            )
        });
        evs
    }

    /// FNV-1a fingerprint of the deterministic span stream plus the
    /// deterministic metrics (counters + histograms; gauges and
    /// wall-clock excluded). Equal fingerprints across two runs mean the
    /// virtual-time telemetry is bit-identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for e in self.deterministic_stream() {
            h.byte(e.phase as u8);
            h.u64(e.round as u64);
            h.u64(e.lane as u64);
            h.u64(e.device as u64);
            h.u64(e.seq as u64);
            h.u64(e.vt_start.to_bits());
            h.u64(e.vt_end.to_bits());
        }
        h.u64(self.registry.fingerprint());
        h.finish()
    }

    fn record(&self, ev: SpanEvent) {
        self.registry
            .inc(self.ids.phase_counts[ev.phase as usize], 1);
        let dur = ev.vt_end - ev.vt_start;
        match ev.phase {
            Phase::LocalTrain => self.registry.observe(self.ids.vt_local_train, dur),
            Phase::RelayHop => self.registry.observe(self.ids.vt_relay_hop, dur),
            Phase::RingInterval => self.registry.observe(self.ids.vt_ring_interval, dur),
            _ => {}
        }
        let mut log = self.log.lock().expect("telemetry log poisoned");
        if log.events.len() < log.capacity {
            log.events.push(ev);
        } else {
            drop(log);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.registry.inc(self.ids.spans_dropped, 1);
        }
    }
}

/// Cheap cloneable instrumentation handle threaded through `FlEnv`.
///
/// [`TelemetrySink::disabled`] is the default everywhere; every method on
/// a disabled sink reduces to a branch on `None`.
#[derive(Clone, Default)]
pub struct TelemetrySink(Option<Arc<Telemetry>>);

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("TelemetrySink(disabled)"),
            Some(t) => write!(
                f,
                "TelemetrySink(enabled, {} events)",
                t.log.lock().expect("telemetry log poisoned").events.len()
            ),
        }
    }
}

impl TelemetrySink {
    /// The no-op sink: records nothing, allocates nothing.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink(None)
    }

    /// An enabled sink whose event buffer holds up to `capacity` spans
    /// (allocated here, never grown; overflow is counted and dropped).
    pub fn enabled(capacity: usize) -> TelemetrySink {
        TelemetrySink(Some(Arc::new(Telemetry::new(capacity))))
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing store, when enabled (exporters and tests read it).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.0.as_deref()
    }

    /// Anchor a wall-clock measurement; reads the clock only when
    /// enabled.
    #[inline]
    pub fn wall_start(&self) -> WallStart {
        WallStart(self.0.as_ref().map(|_| Instant::now()))
    }

    /// Record a span covering virtual `[vt.0, vt.1]` whose wall-clock
    /// extent runs from `wall` (from [`TelemetrySink::wall_start`]) to
    /// now. No-op on a disabled sink.
    #[inline]
    pub fn span(&self, phase: Phase, round: u32, ctx: SpanCtx, vt: (f64, f64), wall: WallStart) {
        if let Some(t) = &self.0 {
            let (wall_start_ns, wall_end_ns) = match wall.0 {
                Some(start) => (
                    start.saturating_duration_since(t.epoch).as_nanos() as u64,
                    t.epoch.elapsed().as_nanos() as u64,
                ),
                None => (0, 0),
            };
            t.record(SpanEvent {
                phase,
                round,
                lane: ctx.lane,
                device: ctx.device,
                seq: ctx.seq,
                vt_start: vt.0,
                vt_end: vt.1,
                wall_start_ns,
                wall_end_ns,
            });
        }
    }

    /// Fold a bundle of runtime observations into the well-known gauges.
    /// `arena_high_water_bytes` keeps a running maximum; the rest are
    /// last-writer-wins. No-op on a disabled sink.
    pub fn update_gauges(&self, g: &RuntimeGauges) {
        if let Some(t) = &self.0 {
            let ids = &t.ids.gauges;
            t.registry
                .gauge_max(ids.arena_high_water_bytes, g.arena_high_water_bytes);
            t.registry.gauge_set(ids.weight_packs, g.weight_packs);
            t.registry.gauge_set(ids.cache_hits, g.cache_hits);
            t.registry.gauge_set(ids.cache_misses, g.cache_misses);
            t.registry
                .gauge_set(ids.fleet_realised_devices, g.fleet_realised_devices);
            t.registry
                .gauge_set(ids.fleet_realised_state_bytes, g.fleet_realised_state_bytes);
            t.registry
                .gauge_set(ids.fleet_shard_touches, g.fleet_shard_touches);
            t.registry
                .gauge_set(ids.data_shards_realised, g.data_shards_realised);
            t.registry
                .gauge_set(ids.data_shard_cache_hits, g.data_shard_cache_hits);
            t.registry
                .gauge_set(ids.data_resident_shard_bytes, g.data_resident_shard_bytes);
        }
    }

    /// Add a round's transport-fault observations to the cumulative
    /// `transport.*` counters. No-op on a disabled sink, and cheap to
    /// call with an all-zero bundle (fault-free rounds).
    pub fn add_transport(&self, c: &TransportCounters) {
        if let Some(t) = &self.0 {
            let ids = &t.ids.transport;
            t.registry.inc(ids.retries, c.retries);
            t.registry
                .inc(ids.corruptions_detected, c.corruptions_detected);
            t.registry.inc(ids.timeouts, c.timeouts);
            t.registry.inc(ids.giveups, c.giveups);
            t.registry.inc(ids.rebuilds, c.rebuilds);
        }
    }

    /// Add a round's wire-codec byte deltas to the cumulative
    /// `wire.codec.{encoded,raw}_bytes` counters: what actually crossed
    /// the wire versus the f32 frames that traffic represents. Equal
    /// under the lossless `F32` codec; the gap is the codec's saving.
    /// No-op on a disabled sink.
    pub fn add_codec_bytes(&self, encoded: u64, raw: u64) {
        if let Some(t) = &self.0 {
            let ids = &t.ids.codec;
            t.registry.inc(ids.encoded_bytes, encoded);
            t.registry.inc(ids.raw_bytes, raw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.telemetry().is_none());
        let w = sink.wall_start();
        sink.span(Phase::Round, 0, SpanCtx::ROOT, (0.0, 1.0), w);
        sink.update_gauges(&RuntimeGauges::default());
    }

    #[test]
    fn spans_are_recorded_and_counted() {
        let sink = TelemetrySink::enabled(16);
        let w = sink.wall_start();
        sink.span(
            Phase::LocalTrain,
            3,
            SpanCtx::device(1, 42, 0),
            (1.0, 3.5),
            w,
        );
        sink.span(Phase::Round, 3, SpanCtx::ROOT, (0.0, 9.0), w);
        let t = sink.telemetry().expect("enabled");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, Phase::LocalTrain);
        assert_eq!(evs[0].device, 42);
        assert_eq!(evs[0].vt_end, 3.5);
        assert!(evs[0].wall_end_ns >= evs[0].wall_start_ns);
        let m = t.metrics();
        assert!(m.counters.contains(&("spans.local_train", 1)));
        assert!(m.counters.contains(&("spans.round", 1)));
        // The local-train duration (2.5s) landed in the (2.0, 4.0] bucket.
        let hist = m
            .histograms
            .iter()
            .find(|h| h.name == "vt.local_train_seconds")
            .expect("registered");
        assert_eq!(hist.sum, 2.5);
        assert_eq!(hist.total(), 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let sink = TelemetrySink::enabled(1);
        let w = sink.wall_start();
        sink.span(Phase::Round, 0, SpanCtx::ROOT, (0.0, 1.0), w);
        sink.span(Phase::Round, 1, SpanCtx::ROOT, (1.0, 2.0), w);
        let t = sink.telemetry().expect("enabled");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
        // The dropped span still counted toward its phase metric.
        assert!(t.metrics().counters.contains(&("spans.round", 2)));
    }

    #[test]
    fn deterministic_stream_masks_wall_and_sorts() {
        let a = TelemetrySink::enabled(8);
        let b = TelemetrySink::enabled(8);
        // Record in different orders; wall clocks necessarily differ.
        for (lane, vt) in [(1u32, (2.0, 3.0)), (0u32, (0.0, 1.0))] {
            let w = a.wall_start();
            a.span(Phase::RingInterval, 0, SpanCtx::lane(lane), vt, w);
        }
        for (lane, vt) in [(0u32, (0.0, 1.0)), (1u32, (2.0, 3.0))] {
            let w = b.wall_start();
            b.span(Phase::RingInterval, 0, SpanCtx::lane(lane), vt, w);
        }
        let (ta, tb) = (a.telemetry().unwrap(), b.telemetry().unwrap());
        assert_eq!(ta.deterministic_stream(), tb.deterministic_stream());
        assert_eq!(ta.fingerprint(), tb.fingerprint());
        assert!(ta.deterministic_stream().iter().all(|e| e.wall_end_ns == 0));
    }

    #[test]
    fn transport_counters_accumulate() {
        let sink = TelemetrySink::enabled(4);
        sink.add_transport(&TransportCounters {
            retries: 3,
            corruptions_detected: 1,
            timeouts: 2,
            giveups: 0,
            rebuilds: 1,
        });
        sink.add_transport(&TransportCounters {
            retries: 1,
            ..TransportCounters::default()
        });
        let m = sink.telemetry().expect("enabled").metrics();
        assert!(m.counters.contains(&("transport.retries", 4)));
        assert!(m.counters.contains(&("transport.corruptions_detected", 1)));
        assert!(m.counters.contains(&("transport.timeouts", 2)));
        assert!(m.counters.contains(&("transport.giveups", 0)));
        assert!(m.counters.contains(&("transport.rebuilds", 1)));
        // Disabled sinks swallow the bundle without touching anything.
        TelemetrySink::disabled().add_transport(&TransportCounters::default());
    }

    #[test]
    fn codec_byte_counters_accumulate() {
        let sink = TelemetrySink::enabled(4);
        sink.add_codec_bytes(1_000, 4_000);
        sink.add_codec_bytes(500, 2_000);
        let m = sink.telemetry().expect("enabled").metrics();
        assert!(m.counters.contains(&("wire.codec.encoded_bytes", 1_500)));
        assert!(m.counters.contains(&("wire.codec.raw_bytes", 6_000)));
        TelemetrySink::disabled().add_codec_bytes(1, 1);
    }

    #[test]
    fn sink_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TelemetrySink>();
    }
}
