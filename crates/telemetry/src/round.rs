//! Per-round telemetry snapshot folded into `RunRecord`.

use serde::{Deserialize, Serialize};

/// Unified per-round observability snapshot: the traffic-ledger deltas
/// for this round plus the engine/fleet runtime counters that previously
/// had to be scraped from four different one-off APIs.
///
/// Two field classes with different guarantees:
///
/// * **deterministic** — the seven traffic deltas. Pure functions of the
///   seed, bit-identical across runs and across Cached/Reference
///   execution modes. These are the only fields [`PartialEq`] compares,
///   so `RunRecord` equality assertions (determinism and
///   engine-equivalence suites) keep their exact meaning.
/// * **best-effort** — cache/pack/arena/fleet observations. They depend
///   on execution mode, thread scheduling, and process history, and are
///   carried for diagnosis only.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RoundTelemetry {
    /// Device→server model-equivalents charged this round (deterministic).
    pub uploads: f64,
    /// Server→device model-equivalents charged this round (deterministic).
    pub downloads: f64,
    /// Device→device model-equivalents charged this round (deterministic).
    pub peer_transfers: f64,
    /// Parameters moved this round (deterministic).
    pub parameters_moved: f64,
    /// Encoded wire bytes charged this round (deterministic).
    pub wire_bytes: f64,
    /// Uncompressed (f32-frame) bytes the round's traffic *represents*
    /// (deterministic). Equals `wire_bytes` under the `F32` codec; the
    /// gap is what the wire codec saved this round.
    pub raw_bytes: f64,
    /// Retransmitted wire bytes charged this round — resends after
    /// loss/corruption/timeout plus duplicate deliveries (deterministic;
    /// 0.0 in fault-free runs).
    pub retransmit_bytes: f64,
    /// Engine cache hits during this round (best-effort).
    pub cache_hits: u64,
    /// Engine cache misses during this round (best-effort).
    pub cache_misses: u64,
    /// Cumulative GEMM panel packs across this thread's cached model
    /// (best-effort; Cached mode only).
    pub weight_packs: u64,
    /// Arena high-water bytes of this thread's cached model
    /// (best-effort; Cached mode only).
    pub arena_high_water_bytes: u64,
    /// Devices with realised fleet trajectories after this round
    /// (best-effort).
    pub fleet_realised_devices: u64,
    /// Bytes of realised fleet trajectory state after this round
    /// (best-effort).
    pub fleet_realised_state_bytes: u64,
    /// Cumulative fleet shard queries after this round (best-effort).
    pub fleet_shard_touches: u64,
    /// Cumulative data shards realised (lazy data plane) after this
    /// round (best-effort; 0 in dense mode).
    pub data_shards_realised: u64,
    /// Cumulative shard-cache hits after this round (best-effort; 0 in
    /// dense mode).
    pub data_shard_cache_hits: u64,
    /// Bytes of cache-resident realised shard data after this round
    /// (best-effort; 0 in dense mode).
    pub data_resident_shard_bytes: u64,
}

impl PartialEq for RoundTelemetry {
    /// Deterministic fields only — see the type docs.
    fn eq(&self, other: &Self) -> bool {
        self.uploads == other.uploads
            && self.downloads == other.downloads
            && self.peer_transfers == other.peer_transfers
            && self.parameters_moved == other.parameters_moved
            && self.wire_bytes == other.wire_bytes
            && self.raw_bytes == other.raw_bytes
            && self.retransmit_bytes == other.retransmit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_best_effort_fields() {
        let a = RoundTelemetry {
            uploads: 5.0,
            wire_bytes: 1000.0,
            cache_hits: 10,
            arena_high_water_bytes: 4096,
            ..RoundTelemetry::default()
        };
        let b = RoundTelemetry {
            cache_hits: 999,
            arena_high_water_bytes: 0,
            ..a
        };
        assert_eq!(a, b);
        let c = RoundTelemetry {
            wire_bytes: 1001.0,
            ..a
        };
        assert_ne!(a, c);
        let d = RoundTelemetry {
            retransmit_bytes: 40.0,
            ..a
        };
        assert_ne!(a, d);
        let e = RoundTelemetry {
            raw_bytes: 4000.0,
            ..a
        };
        assert_ne!(a, e, "raw_bytes is a deterministic delta");
    }

    #[test]
    fn serde_round_trip() {
        let t = RoundTelemetry {
            uploads: 3.0,
            downloads: 2.0,
            peer_transfers: 7.0,
            parameters_moved: 1234.0,
            wire_bytes: 5678.0,
            raw_bytes: 6789.0,
            retransmit_bytes: 90.0,
            cache_hits: 4,
            cache_misses: 1,
            weight_packs: 9,
            arena_high_water_bytes: 8192,
            fleet_realised_devices: 16,
            fleet_realised_state_bytes: 2048,
            fleet_shard_touches: 64,
            data_shards_realised: 32,
            data_shard_cache_hits: 128,
            data_resident_shard_bytes: 65536,
        };
        let v = t.to_value();
        let back = RoundTelemetry::from_value(&v).expect("round trip");
        assert_eq!(t, back);
        assert_eq!(back.cache_hits, 4);
        assert_eq!(back.arena_high_water_bytes, 8192);
        assert_eq!(back.data_shards_realised, 32);
        assert_eq!(back.data_resident_shard_bytes, 65536);
    }
}
