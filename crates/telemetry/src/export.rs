//! Trace exporters and the schema validator the CI smoke step uses.
//!
//! Two formats come out of one [`Telemetry`] store:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace_string`]) — loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Two
//!   process tracks: pid 1 carries the spans on the **virtual clock**
//!   (deterministic simulated time), pid 2 the same spans on the **wall
//!   clock**. Within a track, tid 0 is the round-level lane and tid
//!   `lane + 1` is class ring `lane`.
//! * **JSONL** ([`jsonl_string`]) — one span per line in canonical
//!   deterministic order (wall fields included, last), then one
//!   `metrics` line with the registry snapshot; grep/jq-friendly.

use crate::span::{Phase, SpanEvent, Telemetry, NO_ID};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Virtual-time pid in the Chrome trace.
pub const PID_VIRTUAL: u64 = 1;
/// Wall-clock pid in the Chrome trace.
pub const PID_WALL: u64 = 2;

fn tid(lane: u32) -> u64 {
    if lane == NO_ID {
        0
    } else {
        lane as u64 + 1
    }
}

/// [`NO_ID`] renders as `-1` in exported JSON.
fn id_i64(v: u32) -> i64 {
    if v == NO_ID {
        -1
    } else {
        v as i64
    }
}

fn push_complete_event(out: &mut String, ev: &SpanEvent, pid: u64, ts_us: f64, dur_us: f64) {
    let _ = write!(
        out,
        concat!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},",
            "\"pid\":{},\"tid\":{},\"args\":{{\"round\":{},\"lane\":{},",
            "\"device\":{},\"seq\":{}}}}}"
        ),
        ev.phase.name(),
        ts_us,
        dur_us,
        pid,
        tid(ev.lane),
        ev.round,
        id_i64(ev.lane),
        id_i64(ev.device),
        ev.seq,
    );
}

/// Render the full Chrome trace-event JSON document.
pub fn chrome_trace_string(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let _ = write!(
        out,
        concat!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,",
            "\"args\":{{\"name\":\"virtual time (simulated seconds)\"}}}},",
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,",
            "\"args\":{{\"name\":\"wall clock\"}}}}"
        ),
        PID_VIRTUAL, PID_WALL
    );
    // Virtual track in canonical deterministic order: 1 virtual second
    // maps to 1 trace second (ts is microseconds).
    for ev in t.deterministic_stream() {
        out.push(',');
        let ts = ev.vt_start * 1e6;
        let dur = (ev.vt_end - ev.vt_start) * 1e6;
        push_complete_event(&mut out, &ev, PID_VIRTUAL, ts, dur);
    }
    // Wall track in wall order.
    let mut wall: Vec<SpanEvent> = t.events();
    wall.sort_by_key(|e| e.wall_start_ns);
    for ev in wall {
        out.push(',');
        let ts = ev.wall_start_ns as f64 / 1e3;
        let dur = ev.wall_end_ns.saturating_sub(ev.wall_start_ns) as f64 / 1e3;
        push_complete_event(&mut out, &ev, PID_WALL, ts, dur);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render the JSONL structured event log.
pub fn jsonl_string(t: &Telemetry) -> String {
    let mut out = String::new();
    for ev in t.deterministic_stream() {
        let _ = writeln!(
            out,
            concat!(
                "{{\"type\":\"span\",\"phase\":\"{}\",\"round\":{},\"lane\":{},",
                "\"device\":{},\"seq\":{},\"vt_start\":{},\"vt_end\":{}}}"
            ),
            ev.phase.name(),
            ev.round,
            id_i64(ev.lane),
            id_i64(ev.device),
            ev.seq,
            ev.vt_start,
            ev.vt_end,
        );
    }
    let m = t.metrics();
    out.push_str("{\"type\":\"metrics\",\"counters\":{");
    for (i, (name, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("}}\n");
    out
}

/// Write the Chrome trace to `path` (and, alongside it, a `.jsonl` event
/// log with the same stem). Returns the jsonl path.
pub fn export_trace(t: &Telemetry, path: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::write(path, chrome_trace_string(t))?;
    let jsonl = path.with_extension("jsonl");
    std::fs::write(&jsonl, jsonl_string(t))?;
    Ok(jsonl)
}

/// What [`validate_chrome_trace`] learned about a trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total entries in `traceEvents` (metadata included).
    pub total_events: usize,
    /// Complete (`ph:"X"`) span events on the virtual-time track.
    pub virtual_spans: usize,
    /// Phase names seen per round on the virtual-time track.
    pub rounds: BTreeMap<u64, BTreeSet<String>>,
}

impl TraceSummary {
    /// True when every round's span set contains all of `phases`.
    pub fn every_round_covers(&self, phases: &[Phase]) -> bool {
        !self.rounds.is_empty()
            && self
                .rounds
                .values()
                .all(|seen| phases.iter().all(|p| seen.contains(p.name())))
    }
}

fn num_field(ev: &serde::Value, key: &str) -> Result<f64, String> {
    match ev.field(key).map_err(|e| e.to_string())? {
        serde::Value::U64(x) => Ok(*x as f64),
        serde::Value::I64(x) => Ok(*x as f64),
        serde::Value::F64(x) => Ok(*x),
        other => Err(format!("`{key}` is not a number: {other:?}")),
    }
}

fn str_field<'v>(ev: &'v serde::Value, key: &str) -> Result<&'v str, String> {
    match ev.field(key).map_err(|e| e.to_string())? {
        serde::Value::Str(s) => Ok(s),
        other => Err(format!("`{key}` is not a string: {other:?}")),
    }
}

/// Schema-check a Chrome trace-event document: well-formed JSON, a
/// non-empty `traceEvents` array, every entry a valid metadata or
/// complete event, and every complete event carrying finite timestamps
/// and a `round` arg. Returns per-round phase coverage for the
/// acceptance assertions.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let doc: serde::Value =
        serde_json::from_str(json).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = match doc.field("traceEvents").map_err(|e| e.to_string())? {
        serde::Value::Seq(evs) => evs,
        other => return Err(format!("`traceEvents` is not an array: {other:?}")),
    };
    if events.is_empty() {
        return Err("`traceEvents` is empty".to_string());
    }
    let mut summary = TraceSummary {
        total_events: events.len(),
        virtual_spans: 0,
        rounds: BTreeMap::new(),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = str_field(ev, "ph").map_err(|e| format!("event {i}: {e}"))?;
        let name = str_field(ev, "name").map_err(|e| format!("event {i}: {e}"))?;
        match ph {
            "M" => {}
            "X" => {
                let ts = num_field(ev, "ts").map_err(|e| format!("event {i}: {e}"))?;
                let dur = num_field(ev, "dur").map_err(|e| format!("event {i}: {e}"))?;
                if !ts.is_finite() || !dur.is_finite() || ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: non-finite or negative ts/dur"));
                }
                let pid = num_field(ev, "pid").map_err(|e| format!("event {i}: {e}"))?;
                num_field(ev, "tid").map_err(|e| format!("event {i}: {e}"))?;
                let round = num_field(ev.field("args").map_err(|e| e.to_string())?, "round")
                    .map_err(|e| format!("event {i}: args: {e}"))?;
                if pid == PID_VIRTUAL as f64 {
                    summary.virtual_spans += 1;
                    summary
                        .rounds
                        .entry(round as u64)
                        .or_default()
                        .insert(name.to_string());
                }
            }
            other => return Err(format!("event {i}: unknown phase type `{other}`")),
        }
    }
    if summary.virtual_spans == 0 {
        return Err("no span events on the virtual-time track".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanCtx, TelemetrySink};

    fn sample_sink() -> TelemetrySink {
        let sink = TelemetrySink::enabled(64);
        for round in 0..2u32 {
            let base = round as f64 * 10.0;
            let w = sink.wall_start();
            sink.span(Phase::Clustering, round, SpanCtx::ROOT, (base, base), w);
            let w = sink.wall_start();
            sink.span(
                Phase::RingInterval,
                round,
                SpanCtx::lane(0),
                (base, base + 8.0),
                w,
            );
            let w = sink.wall_start();
            sink.span(
                Phase::LocalTrain,
                round,
                SpanCtx::device(0, 3, 0),
                (base, base + 2.0),
                w,
            );
            let w = sink.wall_start();
            sink.span(
                Phase::Aggregation,
                round,
                SpanCtx::ROOT,
                (base + 8.0, base + 8.0),
                w,
            );
            let w = sink.wall_start();
            sink.span(
                Phase::Evaluation,
                round,
                SpanCtx::ROOT,
                (base + 8.0, base + 8.0),
                w,
            );
            let w = sink.wall_start();
            sink.span(Phase::Round, round, SpanCtx::ROOT, (base, base + 8.0), w);
        }
        sink
    }

    #[test]
    fn chrome_trace_validates_and_covers_rounds() {
        let sink = sample_sink();
        let json = chrome_trace_string(sink.telemetry().unwrap());
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.rounds.len(), 2);
        assert_eq!(summary.virtual_spans, 12);
        assert!(summary.every_round_covers(&[
            Phase::Clustering,
            Phase::RingInterval,
            Phase::LocalTrain,
            Phase::Aggregation,
            Phase::Evaluation,
        ]));
        assert!(!summary.every_round_covers(&[Phase::RelayHop]));
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let sink = sample_sink();
        let text = jsonl_string(sink.telemetry().unwrap());
        let lines: Vec<&str> = text.lines().collect();
        // 12 spans + 1 metrics line.
        assert_eq!(lines.len(), 13);
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).expect("line parses");
            assert!(v.field("type").is_ok());
        }
        assert!(lines[12].contains("\"spans.round\":2"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}").is_err()
        );
    }

    #[test]
    fn sentinel_ids_serialize_as_minus_one() {
        let sink = TelemetrySink::enabled(4);
        let w = sink.wall_start();
        sink.span(Phase::Round, 0, SpanCtx::ROOT, (0.0, 1.0), w);
        let json = chrome_trace_string(sink.telemetry().unwrap());
        assert!(json.contains("\"lane\":-1,\"device\":-1"));
        validate_chrome_trace(&json).expect("valid");
    }
}
