//! The dense row-major `f32` tensor.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::{fill_normal, fill_uniform};
use crate::shape::{num_elements, Shape};
use crate::{Result, TensorError};

/// A dense, row-major, `f32` tensor.
///
/// `Tensor` owns a flat `Vec<f32>`; views are exposed as slices so kernels
/// can use iterator-based inner loops that the compiler auto-vectorizes
/// (see the GEMM kernels in [`crate::gemm`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(dims: Vec<usize>) -> Self {
        let n = num_elements(&dims);
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: Vec<usize>) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: Vec<usize>, value: f32) -> Self {
        let n = num_elements(&dims);
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; n],
        }
    }

    /// Build a tensor from existing data, validating the length.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected = num_elements(&dims);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// A tensor with i.i.d. `N(0, std^2)` entries drawn from `rng`.
    pub fn randn<R: Rng>(dims: Vec<usize>, std: f32, rng: &mut R) -> Self {
        let mut t = Self::zeros(dims);
        fill_normal(&mut t.data, 0.0, std, rng);
        t
    }

    /// A tensor with i.i.d. `U[lo, hi)` entries drawn from `rng`.
    pub fn rand_uniform<R: Rng>(dims: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Self {
        let mut t = Self::zeros(dims);
        fill_uniform(&mut t.data, lo, hi, rng);
        t
    }

    /// The shape's dimension list.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The full [`Shape`] (dims plus strides).
    #[inline]
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterpret the tensor with a new shape of equal element count.
    pub fn reshape(&self, dims: Vec<usize>) -> Result<Tensor> {
        let to = num_elements(&dims);
        if to != self.len() {
            return Err(TensorError::BadReshape {
                from: self.len(),
                to,
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no data movement).
    pub fn reshape_in_place(&mut self, dims: Vec<usize>) -> Result<()> {
        let to = num_elements(&dims);
        if to != self.len() {
            return Err(TensorError::BadReshape {
                from: self.len(),
                to,
            });
        }
        self.shape = Shape::new(dims);
        Ok(())
    }

    /// Row `r` of a matrix as a slice.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        let (rows, cols) = self.shape.as_matrix()?;
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Map a function over all elements, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply a function to all elements in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (None when empty).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Index of the maximum element (first occurrence; None when empty).
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_v = self.data[0];
        for (i, &v) in self.data.iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        Some(best)
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Check that two tensors share a shape, for elementwise kernels.
    pub fn same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_produce_expected_contents() {
        let z = Tensor::zeros(vec![2, 2]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(vec![3]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full(vec![2], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::randn(vec![32], 1.0, &mut r1);
        let b = Tensor::randn(vec![32], 1.0, &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn randn_std_scales_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let narrow = Tensor::randn(vec![4096], 0.1, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let wide = Tensor::randn(vec![4096], 10.0, &mut rng);
        assert!(wide.norm_sq() > narrow.norm_sq() * 100.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::rand_uniform(vec![1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        *t.at_mut(&[1, 2]) = 9.0;
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros(vec![2, 3]);
        assert!(t.reshape(vec![3, 2]).is_ok());
        assert!(t.reshape(vec![7]).is_err());
        let mut t2 = t.clone();
        t2.reshape_in_place(vec![6]).unwrap();
        assert_eq!(t2.shape(), &[6]);
    }

    #[test]
    fn row_slices_matrix() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1., 2., 3.]);
        assert_eq!(t.row(1).unwrap(), &[4., 5., 6.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1., -2., 3., 0.]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.norm_sq(), 1. + 4. + 9.);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        let t = Tensor::from_vec(vec![3], vec![5., 5., 1.]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(vec![0]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), None);
        assert_eq!(t.argmax(), None);
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let sq = t.map(|x| x * x);
        assert_eq!(sq.data(), &[1., 4., 9.]);
        let mut t = t;
        t.map_in_place(|x| -x);
        assert_eq!(t.data(), &[-1., -2., -3.]);
    }

    #[test]
    fn same_shape_errors_on_mismatch() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![3, 2]);
        assert!(a.same_shape(&b).is_err());
        assert!(a.same_shape(&a.clone()).is_ok());
    }
}
