//! Runtime CPU-feature dispatch for the GEMM micro-kernels.
//!
//! The blocked GEMM drivers in [`crate::gemm`] run one register-tiled
//! micro-kernel over packed p-major panels. Which micro-kernel — and which
//! tile geometry — is decided **once per process** from the host CPU:
//!
//! | tier       | tile (`MR×NR`) | inner loop                  | bit-identical |
//! |------------|----------------|-----------------------------|---------------|
//! | `Scalar`   | 4×8            | auto-vectorized mul+add     | yes (reference) |
//! | `Avx2`     | 6×16           | `_mm256_mul_ps`/`add_ps`    | yes           |
//! | `Avx2Fma`  | 6×16           | `_mm256_fmadd_ps`           | **no** (fused rounding) |
//!
//! Every tier accumulates each output element over the reduction dimension
//! in the same `p = 0..k` order, and the non-FMA tiers use plain IEEE-754
//! `f32` multiply and add — so `Scalar` and `Avx2` produce **bit-identical
//! results** on every shape, α/β case and thread count (the tile geometry
//! only changes which elements are computed together, never the per-element
//! operation sequence). `Avx2Fma` contracts each multiply-add into a single
//! rounding, which is *more* accurate but not bit-equal; it therefore ships
//! opt-in (see below) and the workspace-wide bit-determinism contract only
//! covers the default tiers.
//!
//! # Selection
//!
//! * `FEDHISYN_FORCE_SCALAR=1` pins the scalar tier — the escape hatch for
//!   debugging a suspected kernel issue or reproducing results from a
//!   non-AVX2 host bit-for-bit.
//! * `FEDHISYN_ENABLE_FMA=1` opts into the FMA tier where the CPU supports
//!   it (results become target-dependent; see above).
//! * Otherwise the best available non-FMA tier is used: `Avx2` when the
//!   CPU reports AVX2, else `Scalar`.
//!
//! The decision is cached in a `OnceLock` at first kernel use; the env
//! variables are read exactly once. [`select_tier`] is the pure decision
//! function, kept separate so the truth table is unit-testable without
//! mutating process environment.

use std::sync::OnceLock;

/// The micro-kernel families the runtime dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelTier {
    /// Portable 4×8 tile relying on LLVM auto-vectorization at the baseline
    /// target. The executable reference every other tier is proven against.
    #[default]
    Scalar,
    /// Hand-written AVX2 6×16 tile with separate multiply and add —
    /// bit-identical to `Scalar` by construction.
    Avx2,
    /// AVX2 6×16 tile with fused multiply-add. Faster and more accurate,
    /// but fused contraction changes rounding: **not** bit-identical.
    Avx2Fma,
}

impl KernelTier {
    /// Stable lowercase name for logs / bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx2Fma => "avx2_fma",
        }
    }

    /// Whether this tier's results are bit-identical to the scalar
    /// reference kernels (the workspace determinism contract).
    pub fn bit_identical(self) -> bool {
        !matches!(self, KernelTier::Avx2Fma)
    }

    /// Whether the host CPU can execute this tier.
    pub fn available(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            KernelTier::Avx2 => cpu_has_avx2(),
            KernelTier::Avx2Fma => cpu_has_avx2() && cpu_has_fma(),
        }
    }

    /// Register-tile geometry `(MR, NR)` of this tier's micro-kernel.
    pub(crate) fn tile(self) -> (usize, usize) {
        match self {
            KernelTier::Scalar => (crate::gemm::SCALAR_MR, crate::gemm::SCALAR_NR),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 | KernelTier::Avx2Fma => {
                (crate::gemm_avx2::MR_AVX2, crate::gemm_avx2::NR_AVX2)
            }
            #[cfg(not(target_arch = "x86_64"))]
            KernelTier::Avx2 | KernelTier::Avx2Fma => {
                (crate::gemm::SCALAR_MR, crate::gemm::SCALAR_NR)
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2() -> bool {
    is_x86_feature_detected!("avx2")
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_fma() -> bool {
    is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_fma() -> bool {
    false
}

/// True when the env var is set to an affirmative value. Explicit
/// negatives (`0`, `false`, `no`, `off`, empty) are false — so
/// `FEDHISYN_ENABLE_FMA=false` documents FMA as disabled instead of
/// silently enabling it.
fn env_truthy(name: &str) -> bool {
    std::env::var(name)
        .map(|v| {
            !matches!(
                v.to_ascii_lowercase().as_str(),
                "" | "0" | "false" | "no" | "off"
            )
        })
        .unwrap_or(false)
}

/// The pure tier-selection truth table (see the module docs). `Scalar`
/// always wins under `force_scalar` or without AVX2; FMA requires both the
/// explicit request and hardware support.
pub fn select_tier(
    force_scalar: bool,
    fma_requested: bool,
    has_avx2: bool,
    has_fma: bool,
) -> KernelTier {
    if force_scalar || !has_avx2 {
        KernelTier::Scalar
    } else if fma_requested && has_fma {
        KernelTier::Avx2Fma
    } else {
        KernelTier::Avx2
    }
}

/// The tier every public GEMM entry point dispatches to, decided once per
/// process (env + CPUID) and cached.
pub fn active_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        select_tier(
            env_truthy("FEDHISYN_FORCE_SCALAR"),
            env_truthy("FEDHISYN_ENABLE_FMA"),
            cpu_has_avx2(),
            cpu_has_fma(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_truth_table() {
        // force_scalar dominates everything.
        for &(fma_req, avx2, fma) in &[
            (false, false, false),
            (true, true, true),
            (false, true, true),
            (true, false, false),
        ] {
            assert_eq!(select_tier(true, fma_req, avx2, fma), KernelTier::Scalar);
        }
        // No AVX2 → scalar, regardless of the FMA request.
        assert_eq!(select_tier(false, false, false, false), KernelTier::Scalar);
        assert_eq!(select_tier(false, true, false, true), KernelTier::Scalar);
        // AVX2 without the FMA request (or without FMA hardware) → Avx2.
        assert_eq!(select_tier(false, false, true, true), KernelTier::Avx2);
        assert_eq!(select_tier(false, true, true, false), KernelTier::Avx2);
        // FMA requires request AND hardware.
        assert_eq!(select_tier(false, true, true, true), KernelTier::Avx2Fma);
    }

    #[test]
    fn env_truthy_rejects_explicit_negatives() {
        assert!(!env_truthy("FEDHISYN_TEST_TRUTHY_UNSET"));
        for (value, want) in [
            ("false", false),
            ("False", false),
            ("NO", false),
            ("off", false),
            ("0", false),
            ("", false),
            ("1", true),
            ("true", true),
            ("yes", true),
            ("on", true),
        ] {
            std::env::set_var("FEDHISYN_TEST_TRUTHY", value);
            assert_eq!(env_truthy("FEDHISYN_TEST_TRUTHY"), want, "value {value:?}");
        }
        std::env::remove_var("FEDHISYN_TEST_TRUTHY");
    }

    #[test]
    fn tier_metadata_is_consistent() {
        assert!(KernelTier::Scalar.available());
        assert!(KernelTier::Scalar.bit_identical());
        assert!(KernelTier::Avx2.bit_identical());
        assert!(!KernelTier::Avx2Fma.bit_identical());
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        assert_eq!(KernelTier::Avx2.name(), "avx2");
        assert_eq!(KernelTier::Avx2Fma.name(), "avx2_fma");
        // FMA availability implies AVX2 availability on every real CPU this
        // runs on (FMA3 postdates AVX2 in practice for our detection pair).
        if KernelTier::Avx2Fma.available() {
            assert!(KernelTier::Avx2.available());
        }
        // The active tier must be executable and must match the tile
        // geometry contract: scalar 4×8, AVX2 6×16.
        let tier = active_tier();
        assert!(tier.available());
        let (mr, nr) = tier.tile();
        match tier {
            KernelTier::Scalar => assert_eq!((mr, nr), (4, 8)),
            KernelTier::Avx2 | KernelTier::Avx2Fma => assert_eq!((mr, nr), (6, 16)),
        }
    }
}
