//! A bump-reset scratch arena for allocation-free compute hot paths.
//!
//! [`Scratch`] owns one flat `f32` slab and hands out [`ScratchSlot`]
//! handles — `(start, len)` ranges into the slab — from a bump cursor.
//! [`Scratch::reset`] rewinds the cursor without releasing the slab, so a
//! loop that allocates the same sequence of buffers every iteration (a
//! training step: batch input, per-layer activations, per-layer gradients)
//! touches the allocator only while the slab grows toward its high-water
//! mark; after the first full-sized iteration every `alloc` is a cursor
//! bump plus a `fill(0.0)`.
//!
//! # Why handles instead of borrows
//!
//! A training step needs many arena buffers alive at once (every layer's
//! activation survives until the backward pass), which rules out handing
//! out `&mut [f32]` directly from one owner. Slots are `Copy` indices;
//! callers materialise short-lived views with [`Scratch::slice`] /
//! [`Scratch::slice_mut`], and [`Scratch::ro_rw`] splits the slab to view
//! two *disjoint* slots at once (one read-only input, one mutable output —
//! the shape of every kernel call in a layer). Disjointness is asserted,
//! so aliasing is impossible without `unsafe`.
//!
//! # Invariants
//!
//! * `alloc` zero-fills the returned range — arena buffers behave exactly
//!   like freshly allocated `Tensor::zeros` storage, which is what keeps
//!   the arena training path bit-identical to the allocating path.
//! * Slots are only valid until the next [`Scratch::reset`]; the arena
//!   does not track liveness (that is the point — per-step lifetimes are
//!   enforced by the training loop's structure).
//! * Growing the slab never invalidates slots: handles are indices, not
//!   pointers.

/// A range handle into a [`Scratch`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchSlot {
    start: usize,
    len: usize,
}

impl ScratchSlot {
    /// Number of `f32` elements in the slot.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slot holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-range of this slot (relative to its start).
    ///
    /// # Panics
    /// Panics when `offset + len` exceeds the slot.
    #[inline]
    pub fn sub(&self, offset: usize, len: usize) -> ScratchSlot {
        assert!(
            offset + len <= self.len,
            "sub-slot {offset}+{len} exceeds slot of {}",
            self.len
        );
        ScratchSlot {
            start: self.start + offset,
            len,
        }
    }

    #[inline]
    fn end(&self) -> usize {
        self.start + self.len
    }

    #[inline]
    fn disjoint(&self, other: &ScratchSlot) -> bool {
        self.end() <= other.start || other.end() <= self.start
    }
}

/// Bump-allocating, reset-per-step `f32` arena (see the module docs).
#[derive(Debug, Default)]
pub struct Scratch {
    data: Vec<f32>,
    cursor: usize,
}

/// Cloning a model must not drag a step's transient buffers along: a clone
/// starts with an empty arena and re-grows on its own first step.
impl Clone for Scratch {
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

impl Scratch {
    /// An empty arena (no slab until the first `alloc`).
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Rewind the bump cursor, invalidating all outstanding slots and
    /// keeping the slab for reuse.
    #[inline]
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Carve a zero-filled slot of `len` elements off the bump cursor.
    ///
    /// Grows the slab when the cursor passes its current size; steady
    /// state (cursor stays under the high-water mark) performs no heap
    /// allocation.
    pub fn alloc(&mut self, len: usize) -> ScratchSlot {
        let start = self.cursor;
        let end = start + len;
        if self.data.len() < end {
            self.data.resize(end, 0.0);
        }
        self.data[start..end].fill(0.0);
        self.cursor = end;
        ScratchSlot { start, len }
    }

    /// Read-only view of a slot.
    #[inline]
    pub fn slice(&self, slot: ScratchSlot) -> &[f32] {
        &self.data[slot.start..slot.end()]
    }

    /// Mutable view of a slot.
    #[inline]
    pub fn slice_mut(&mut self, slot: ScratchSlot) -> &mut [f32] {
        &mut self.data[slot.start..slot.end()]
    }

    /// Simultaneous `(read-only, mutable)` views of two disjoint slots —
    /// the kernel-call shape (`input`, `output`) every layer needs.
    ///
    /// # Panics
    /// Panics when the slots overlap.
    pub fn ro_rw(&mut self, ro: ScratchSlot, rw: ScratchSlot) -> (&[f32], &mut [f32]) {
        assert!(ro.disjoint(&rw), "ro_rw: slots alias ({ro:?} vs {rw:?})");
        if ro.start < rw.start {
            let (lo, hi) = self.data.split_at_mut(rw.start);
            (&lo[ro.start..ro.end()], &mut hi[..rw.len])
        } else {
            let (lo, hi) = self.data.split_at_mut(ro.start);
            (&hi[..ro.len], &mut lo[rw.start..rw.end()])
        }
    }

    /// Simultaneous `(read-only, mutable, mutable)` views of three
    /// pairwise-disjoint slots — for kernels that lower an input through a
    /// workspace into an output in one pass (im2col + GEMM).
    ///
    /// # Panics
    /// Panics when any two slots overlap.
    pub fn ro_rw_rw(
        &mut self,
        ro: ScratchSlot,
        rw1: ScratchSlot,
        rw2: ScratchSlot,
    ) -> (&[f32], &mut [f32], &mut [f32]) {
        assert!(
            ro.disjoint(&rw1) && ro.disjoint(&rw2) && rw1.disjoint(&rw2),
            "ro_rw_rw: slots alias"
        );
        let len = self.data.len();
        assert!(
            ro.end() <= len && rw1.end() <= len && rw2.end() <= len,
            "ro_rw_rw: slot out of bounds"
        );
        // Safety: the three ranges are pairwise disjoint (asserted above)
        // and in-bounds views of the one live slab, whose `&mut self`
        // borrow pins the storage for the views' lifetime.
        let base = self.data.as_mut_ptr();
        unsafe {
            (
                std::slice::from_raw_parts(base.add(ro.start).cast_const(), ro.len),
                std::slice::from_raw_parts_mut(base.add(rw1.start), rw1.len),
                std::slice::from_raw_parts_mut(base.add(rw2.start), rw2.len),
            )
        }
    }

    /// Elements currently carved out since the last reset.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.cursor
    }

    /// Slab size — the high-water mark of any step so far.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// [`Scratch::capacity`] in **bytes** — the heap footprint the arena
    /// has grown to across all steps so far. Benchmarks report this so
    /// arena growth regressions (a layer carving more scratch than it
    /// used to) are visible in the recorded numbers, not just in RSS.
    #[inline]
    pub fn high_water_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zero_filled_and_bumping() {
        let mut s = Scratch::new();
        let a = s.alloc(4);
        s.slice_mut(a).copy_from_slice(&[1., 2., 3., 4.]);
        let b = s.alloc(2);
        assert_eq!(s.slice(b), &[0.0, 0.0]);
        assert_eq!(
            s.slice(a),
            &[1., 2., 3., 4.],
            "later allocs must not clobber"
        );
        assert_eq!(s.in_use(), 6);
    }

    #[test]
    fn reset_reuses_the_slab_and_rezeroes() {
        let mut s = Scratch::new();
        let a = s.alloc(8);
        s.slice_mut(a).fill(7.0);
        let cap = s.capacity();
        let ptr = s.slice(a).as_ptr();
        s.reset();
        let b = s.alloc(8);
        assert_eq!(s.capacity(), cap, "reset must not shrink the slab");
        assert_eq!(s.slice(b).as_ptr(), ptr, "same storage reused");
        assert!(s.slice(b).iter().all(|&x| x == 0.0), "allocs re-zero");
    }

    #[test]
    fn ro_rw_gives_disjoint_views_in_both_orders() {
        let mut s = Scratch::new();
        let a = s.alloc(3);
        let b = s.alloc(3);
        s.slice_mut(a).copy_from_slice(&[1., 2., 3.]);
        {
            let (ro, rw) = s.ro_rw(a, b);
            rw.copy_from_slice(ro);
        }
        assert_eq!(s.slice(b), &[1., 2., 3.]);
        {
            let (ro, rw) = s.ro_rw(b, a);
            for (w, r) in rw.iter_mut().zip(ro) {
                *w += r;
            }
        }
        assert_eq!(s.slice(a), &[2., 4., 6.]);
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn aliasing_ro_rw_panics() {
        let mut s = Scratch::new();
        let a = s.alloc(4);
        let sub = a.sub(1, 2);
        let _ = s.ro_rw(a, sub);
    }

    #[test]
    fn sub_slots_index_into_parent() {
        let mut s = Scratch::new();
        let a = s.alloc(6);
        s.slice_mut(a).copy_from_slice(&[0., 1., 2., 3., 4., 5.]);
        let mid = a.sub(2, 3);
        assert_eq!(s.slice(mid), &[2., 3., 4.]);
    }

    #[test]
    fn growth_keeps_existing_slots_valid() {
        let mut s = Scratch::new();
        let a = s.alloc(2);
        s.slice_mut(a).copy_from_slice(&[9., 8.]);
        let _big = s.alloc(1 << 16); // force slab reallocation
        assert_eq!(s.slice(a), &[9., 8.]);
    }

    #[test]
    fn clone_starts_empty() {
        let mut s = Scratch::new();
        let _ = s.alloc(16);
        let c = s.clone();
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn oversized_sub_panics() {
        let mut s = Scratch::new();
        let a = s.alloc(4);
        let _ = a.sub(2, 3);
    }
}
