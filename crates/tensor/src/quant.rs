//! 8-bit linear quantization kernels for the wire codec.
//!
//! The wire layer (`fedhisyn_nn::wire`) maps f32 spans onto a 256-level
//! linear grid `[min, min + 255·scale]`. Encoding computes
//! `q = clamp(floor((x − min)·inv_scale + 0.5), 0, 255)`; decoding computes
//! `min + q·scale` with one multiply and one add. Both directions are
//! dispatched through [`crate::active_tier`]: the scalar loop and the AVX2
//! loop execute the identical IEEE-754 operation sequence per element, so
//! the tiers are bit-identical by construction.
//!
//! # Rounding and non-finite inputs
//!
//! Rounding is the explicit `floor(t + 0.5)` form rather than
//! `f32::round`: Rust's `round` is half-away-from-zero while
//! `_mm256_round_ps` is half-to-even, and the two disagree on exact
//! halves. `floor(t + 0.5)` compiles to the same `_mm256_floor_ps`
//! semantics on both tiers.
//!
//! Non-finite inputs saturate deterministically: the clamp is
//! `max(0) → min(255)` in that order, and both `f32::max` and
//! `_mm256_max_ps` return the *second* operand when the first is NaN, so
//! `NaN → 0` (the `min` end of the grid), `+∞ → 255`, `−∞ → 0` on every
//! tier.

use crate::dispatch::{active_tier, KernelTier};

/// Quantize one value onto the `[min, min + 255·scale]` grid.
///
/// `inv_scale` must be `1/scale` when `scale > 0` and `0.0` otherwise
/// (the degenerate all-equal / non-finite-range chunk collapses every
/// value to level 0).
#[inline(always)]
#[allow(clippy::manual_clamp)] // clamp propagates NaN; max→min saturates it to 0
pub fn quant8(x: f32, min: f32, inv_scale: f32) -> u8 {
    let t = (x - min) * inv_scale + 0.5;
    t.floor().max(0.0).min(255.0) as u8
}

/// Reconstruct a value from its 8-bit level.
#[inline(always)]
pub fn dequant8(q: u8, min: f32, scale: f32) -> f32 {
    min + (q as f32) * scale
}

/// Min/max over the finite values of a slice; `None` when no value is
/// finite. NaN and ±∞ are skipped so one bad element cannot poison the
/// whole grid (they still quantize deterministically, see module docs).
pub fn finite_min_max(xs: &[f32]) -> Option<(f32, f32)> {
    let mut bounds: Option<(f32, f32)> = None;
    for &x in xs {
        if x.is_finite() {
            bounds = Some(match bounds {
                None => (x, x),
                Some((lo, hi)) => (lo.min(x), hi.max(x)),
            });
        }
    }
    bounds
}

/// Derive the `(scale, inv_scale)` pair for a `[min, max]` span.
///
/// `scale = (max − min)/255`, forced to zero when the subtraction
/// overflows f32 range (e.g. `MAX − (−MAX) = ∞`) so decode never computes
/// `0·∞ = NaN`.
#[inline]
pub fn quant_scale(min: f32, max: f32) -> (f32, f32) {
    let scale = (max - min) / 255.0;
    if scale.is_finite() && scale > 0.0 {
        (scale, 1.0 / scale)
    } else {
        (0.0, 0.0)
    }
}

/// Quantize `xs` into `out` on the active kernel tier.
///
/// # Panics
/// If `out.len() != xs.len()`.
pub fn quantize_slice(xs: &[f32], min: f32, inv_scale: f32, out: &mut [u8]) {
    assert_eq!(xs.len(), out.len(), "quantize_slice length mismatch");
    match active_tier() {
        KernelTier::Scalar => quantize_scalar(xs, min, inv_scale, out),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 | KernelTier::Avx2Fma => {
            // Safety: these tiers are only selected after the CPUID check
            // in `KernelTier::available`.
            unsafe { quantize_avx2(xs, min, inv_scale, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => quantize_scalar(xs, min, inv_scale, out),
    }
}

/// Dequantize `qs` into `out` on the active kernel tier.
///
/// # Panics
/// If `out.len() != qs.len()`.
pub fn dequantize_slice(qs: &[u8], min: f32, scale: f32, out: &mut [f32]) {
    assert_eq!(qs.len(), out.len(), "dequantize_slice length mismatch");
    match active_tier() {
        KernelTier::Scalar => dequantize_scalar(qs, min, scale, out),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 | KernelTier::Avx2Fma => {
            // Safety: tier selection implies AVX2 is present.
            unsafe { dequantize_avx2(qs, min, scale, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => dequantize_scalar(qs, min, scale, out),
    }
}

fn quantize_scalar(xs: &[f32], min: f32, inv_scale: f32, out: &mut [u8]) {
    for (x, o) in xs.iter().zip(out.iter_mut()) {
        *o = quant8(*x, min, inv_scale);
    }
}

fn dequantize_scalar(qs: &[u8], min: f32, scale: f32, out: &mut [f32]) {
    for (q, o) in qs.iter().zip(out.iter_mut()) {
        *o = dequant8(*q, min, scale);
    }
}

/// AVX2 quantize: 8 lanes of sub/mul/add/floor/max/min, then an exact
/// f32→i32 conversion (the value is integral in `[0, 255]`) and a byte
/// store through a stack buffer. Per-element operation sequence is
/// identical to [`quant8`], hence bit-identical output.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2(xs: &[f32], min: f32, inv_scale: f32, out: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let vmin = _mm256_set1_ps(min);
    let vinv = _mm256_set1_ps(inv_scale);
    let vhalf = _mm256_set1_ps(0.5);
    let vzero = _mm256_setzero_ps();
    let vhi = _mm256_set1_ps(255.0);
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let t = _mm256_add_ps(_mm256_mul_ps(_mm256_sub_ps(x, vmin), vinv), vhalf);
        // max(t, 0): NaN in `t` yields the second operand (0), matching
        // `f32::max` exactly — see module docs.
        let c = _mm256_min_ps(_mm256_max_ps(_mm256_floor_ps(t), vzero), vhi);
        let qi = _mm256_cvtps_epi32(c);
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, qi);
        for (j, lane) in lanes.iter().enumerate() {
            *out.get_unchecked_mut(i + j) = *lane as u8;
        }
        i += 8;
    }
    quantize_scalar(&xs[i..], min, inv_scale, &mut out[i..]);
}

/// AVX2 dequantize: widen 8 bytes to i32, convert to f32 (exact for
/// 0..=255), then one mul and one separate add — no FMA on any tier, so
/// the result is bit-identical to [`dequant8`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequantize_avx2(qs: &[u8], min: f32, scale: f32, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = qs.len();
    let vmin = _mm256_set1_ps(min);
    let vscale = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let bytes = _mm_loadl_epi64(qs.as_ptr().add(i) as *const __m128i);
        let wide = _mm256_cvtepu8_epi32(bytes);
        let f = _mm256_cvtepi32_ps(wide);
        let v = _mm256_add_ps(_mm256_mul_ps(f, vscale), vmin);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
        i += 8;
    }
    dequantize_scalar(&qs[i..], min, scale, &mut out[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(xs: &[f32]) -> (f32, f32, f32) {
        let (lo, hi) = finite_min_max(xs).unwrap_or((0.0, 0.0));
        let (scale, inv) = quant_scale(lo, hi);
        (lo, scale, inv)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let (min, scale, inv) = grid(&xs);
        let mut qs = vec![0u8; xs.len()];
        quantize_slice(&xs, min, inv, &mut qs);
        let mut back = vec![0.0f32; xs.len()];
        dequantize_slice(&qs, min, scale, &mut back);
        for (x, y) in xs.iter().zip(back.iter()) {
            assert!((x - y).abs() <= scale * 0.5 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn tiers_are_bit_identical() {
        // Compare the dispatched path against the scalar loop directly;
        // on AVX2 hosts the dispatched path is the vector kernel.
        let xs: Vec<f32> = (0..259).map(|i| ((i as f32) * 1.7 - 200.0) / 3.0).collect();
        let (min, scale, inv) = grid(&xs);
        let mut qa = vec![0u8; xs.len()];
        let mut qb = vec![0u8; xs.len()];
        quantize_slice(&xs, min, inv, &mut qa);
        quantize_scalar(&xs, min, inv, &mut qb);
        assert_eq!(qa, qb);
        let mut da = vec![0.0f32; xs.len()];
        let mut db = vec![0.0f32; xs.len()];
        dequantize_slice(&qa, min, scale, &mut da);
        dequantize_scalar(&qb, min, scale, &mut db);
        for (a, b) in da.iter().zip(db.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_finite_inputs_saturate_deterministically() {
        let xs = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, 1.0];
        let (min, scale, inv) = grid(&xs);
        assert_eq!(min, 0.0);
        let mut qs = vec![0u8; xs.len()];
        quantize_slice(&xs, min, inv, &mut qs);
        assert_eq!(qs[0], 0, "NaN saturates to the min level");
        assert_eq!(qs[1], 255, "+inf saturates to the max level");
        assert_eq!(qs[2], 0, "-inf saturates to the min level");
        assert_eq!(qs[3], 0);
        assert_eq!(qs[4], 255);
        let _ = scale;
    }

    #[test]
    fn degenerate_and_overflowing_ranges_collapse_to_min() {
        // All-equal chunk: scale 0 ⇒ every value decodes to min.
        let (scale, inv) = quant_scale(2.5, 2.5);
        assert_eq!((scale, inv), (0.0, 0.0));
        // f32-range overflow: (MAX − (−MAX)) = inf must not poison decode.
        let (scale, inv) = quant_scale(-f32::MAX, f32::MAX);
        assert_eq!((scale, inv), (0.0, 0.0));
        assert_eq!(dequant8(200, -f32::MAX, scale), -f32::MAX);
    }

    #[test]
    fn half_rounding_is_floor_of_t_plus_half() {
        // x = 1.5 on a unit grid: floor(1.5 + 0.5) = 2 on every tier
        // (f32::round would also give 2 here, but 2.5 → floor(3.0) = 3
        // whereas half-even rounding would give 2).
        assert_eq!(quant8(1.5, 0.0, 1.0), 2);
        assert_eq!(quant8(2.5, 0.0, 1.0), 3);
    }
}
