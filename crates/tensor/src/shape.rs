//! Shape arithmetic for row-major dense tensors.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// Multiply dimensions together, i.e. the number of elements a shape holds.
///
/// An empty dimension list denotes a scalar and yields `1`.
#[inline]
pub fn num_elements(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// A row-major tensor shape.
///
/// Stores the dimension list plus the derived strides so that repeated
/// index computations (hot in the im2col convolution path) do not need to
/// recompute suffix products.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Build a shape from a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        let strides = row_major_strides(&dims);
        Shape { dims, strides }
    }

    /// The dimension list.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides (in elements, not bytes).
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        num_elements(&self.dims)
    }

    /// True when the shape contains no elements (some dimension is zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// Debug builds assert the index is in range; release builds rely on the
    /// caller (slice indexing still bounds-checks the final access).
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        debug_assert!(
            index.iter().zip(&self.dims).all(|(i, d)| i < d),
            "index {index:?} out of bounds for dims {:?}",
            self.dims
        );
        index.iter().zip(&self.strides).map(|(i, s)| i * s).sum()
    }

    /// Interpret this shape as a matrix, returning `(rows, cols)`.
    ///
    /// Rank-1 tensors are viewed as a single row.
    pub fn as_matrix(&self) -> Result<(usize, usize), TensorError> {
        match self.dims.as_slice() {
            [n] => Ok((1, *n)),
            [r, c] => Ok((*r, *c)),
            _ => Err(TensorError::NotAMatrix { rank: self.rank() }),
        }
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(vec![3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn as_matrix_accepts_vectors_and_matrices() {
        assert_eq!(Shape::new(vec![5]).as_matrix().unwrap(), (1, 5));
        assert_eq!(Shape::new(vec![4, 7]).as_matrix().unwrap(), (4, 7));
        assert!(Shape::new(vec![2, 2, 2]).as_matrix().is_err());
    }

    #[test]
    fn from_slice_and_vec_agree() {
        let dims = [3usize, 5];
        let a = Shape::from(dims.as_slice());
        let b = Shape::from(vec![3usize, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn num_elements_of_empty_list_is_one() {
        assert_eq!(num_elements(&[]), 1);
        assert_eq!(num_elements(&[2, 3]), 6);
    }

    #[test]
    fn clone_preserves_strides() {
        let s = Shape::new(vec![6, 2]);
        let c = s.clone();
        assert_eq!(c.strides(), s.strides());
        assert_eq!(c.dims(), s.dims());
    }
}
