//! GEMM kernels in the three orientations required by backpropagation.
//!
//! * `gemm`    — `C = α·A·B + β·C` with `A:[m,k]`, `B:[k,n]` (forward pass)
//! * `gemm_nt` — `C = α·A·Bᵀ + β·C` with `A:[m,k]`, `B:[n,k]` (input grads)
//! * `gemm_tn` — `C = α·Aᵀ·B + β·C` with `A:[k,m]`, `B:[k,n]` (weight grads)
//!
//! # Blocked micro-kernel, runtime-dispatched
//!
//! All three orientations are computed by one register-tiled micro-kernel
//! over `MR×NR` output panels. A and B are first repacked into p-major
//! panels (`apack[p·MR + r]`, `bpack[p·NR + j]`) so the inner loop streams
//! both operands contiguously; the packing cost is `O(mk + kn)` against
//! `O(mkn)` arithmetic. Pack buffers live in thread-local pools (checked
//! out per call, returned after), so steady-state kernels perform **no
//! heap allocation**. Problems under [`BLOCKED_MIN_FLOPS`] skip packing
//! and run a streaming scalar kernel.
//!
//! **Which** micro-kernel runs — and with which tile geometry — is decided
//! once per process by [`crate::dispatch`]: the portable scalar `4×8`
//! lattice (LLVM auto-vectorized at the baseline target), a hand-written
//! AVX2 `6×16` tile, or its FMA variant (opt-in; see the dispatch docs for
//! the per-tier determinism contract). `FEDHISYN_FORCE_SCALAR=1` pins the
//! scalar tier.
//!
//! # Determinism invariants
//!
//! Every path — naive reference, small scalar, blocked serial, blocked
//! parallel, scalar or AVX2 tier, any thread count — accumulates each
//! output element in the **same order**: `p = 0..k` sequentially, with
//! identical α/β placement per orientation (`gemm`/`gemm_tn` start from
//! the β-scaled output and add `(α·a)·b` terms; `gemm_nt` sums raw `a·b`
//! products and applies `α·Σ + β·c` once). Blocking tiles only `m` and
//! `n`, never the reduction dimension; parallelism splits rows of `C`; and
//! the AVX2 tile vectorizes across columns with separate IEEE multiply and
//! add — so results are bit-identical everywhere (the opt-in FMA tier is
//! the sole, documented exception). The [`reference`] module keeps the
//! naive triple-loop kernels as the executable statement of that contract;
//! the equivalence tests assert exact equality against them.
//!
//! [`par_gemm`], [`par_gemm_nt`] and [`par_gemm_tn`] fan out across the
//! rayon pool above a FLOP threshold and fall back to the serial kernels
//! below it.

use std::cell::Cell;

use rayon::prelude::*;

use crate::dispatch::{active_tier, KernelTier};
use crate::{Result, Tensor, TensorError};

/// Minimum number of `m·k·n` multiply-adds before the parallel entry
/// points fan out to the rayon pool; below this the fork/join overhead
/// dominates.
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Minimum number of multiply-adds before the packed blocked kernel pays
/// for itself; smaller problems run the streaming scalar kernels (which
/// produce bit-identical results — see the module docs).
const BLOCKED_MIN_FLOPS: usize = 1 << 13;

/// Rows per scalar-tier register tile.
pub(crate) const SCALAR_MR: usize = 4;
/// Columns per scalar-tier register tile (two SSE / one AVX `f32` vector).
pub(crate) const SCALAR_NR: usize = 8;

thread_local! {
    /// Per-thread pack-buffer pools, checked out per kernel invocation so
    /// re-entrant calls (pool work-helping) never alias a buffer in use.
    static PACK_A: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    static PACK_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Naive triple-loop kernels — the executable specification the optimized
/// paths are proven against.
///
/// Each element is accumulated over `p = 0..k` in order, exactly like the
/// blocked kernels; these exist so the equivalence tests (and the GEMM
/// micro-benchmark) have an obviously-correct, obviously-ordered baseline.
pub mod reference {
    /// Specification of [`super::gemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        beta: f32,
    ) {
        for i in 0..m {
            for j in 0..n {
                let cv = &mut c[i * n + j];
                let mut acc = if beta == 0.0 { 0.0 } else { beta * *cv };
                for p in 0..k {
                    acc += (alpha * a[i * k + p]) * b[p * n + j];
                }
                *cv = acc;
            }
        }
    }

    /// Specification of [`super::gemm_nt`] (`B` is `[n, k]`).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_nt(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        beta: f32,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                let cv = &mut c[i * n + j];
                *cv = if beta == 0.0 {
                    alpha * acc
                } else {
                    alpha * acc + beta * *cv
                };
            }
        }
    }

    /// Specification of [`super::gemm_tn`] (`A` is `[k, m]`).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_tn(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        beta: f32,
    ) {
        for i in 0..m {
            for j in 0..n {
                let cv = &mut c[i * n + j];
                let mut acc = if beta == 0.0 { 0.0 } else { beta * *cv };
                for p in 0..k {
                    acc += (alpha * a[p * m + i]) * b[p * n + j];
                }
                *cv = acc;
            }
        }
    }
}

// ---- pack-buffer checkout ------------------------------------------------

#[inline]
fn checkout_a() -> Vec<f32> {
    PACK_A.with(Cell::take)
}

#[inline]
fn checkin_a(buf: Vec<f32>) {
    PACK_A.with(|c| c.set(buf));
}

#[inline]
fn checkout_b() -> Vec<f32> {
    PACK_B.with(Cell::take)
}

#[inline]
fn checkin_b(buf: Vec<f32>) {
    PACK_B.with(|c| c.set(buf));
}

// ---- panel packing -------------------------------------------------------
//
// Packing is tier-geometry-parameterized but always scalar code: the packed
// values (including the α pre-scale) are produced identically for every
// tier, which is one leg of the cross-tier bit-identity argument.

/// Pack columns `j0..j0+w` of row-major `B:[k,n]` into a p-major `[k, nr]`
/// panel, zero-padding lanes past `w`.
fn pack_b_n(b: &[f32], k: usize, n: usize, j0: usize, w: usize, nr: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), k * nr);
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + w];
        let dst = &mut out[p * nr..(p + 1) * nr];
        dst[..w].copy_from_slice(brow);
        dst[w..].fill(0.0);
    }
}

/// Pack rows `j0..j0+w` of row-major `B:[n,k]` (the transposed operand of
/// `gemm_nt`) into a p-major `[k, nr]` panel.
fn pack_b_t(b: &[f32], k: usize, j0: usize, w: usize, nr: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), k * nr);
    for chunk in out.chunks_exact_mut(nr) {
        chunk.fill(0.0);
    }
    for (j, brow) in b[j0 * k..(j0 + w) * k].chunks_exact(k).enumerate() {
        for (p, &v) in brow.iter().enumerate() {
            out[p * nr + j] = v;
        }
    }
}

/// Pack rows `i0..i0+h` of row-major `A:[m,k]` into a p-major `[k, mr]`
/// panel, pre-scaled by `alpha`.
fn pack_a_n(a: &[f32], k: usize, i0: usize, h: usize, alpha: f32, mr: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), k * mr);
    for chunk in out.chunks_exact_mut(mr) {
        chunk.fill(0.0);
    }
    for (r, arow) in a[i0 * k..(i0 + h) * k].chunks_exact(k).enumerate() {
        for (p, &v) in arow.iter().enumerate() {
            out[p * mr + r] = alpha * v;
        }
    }
}

/// Pack columns `i0..i0+h` of row-major `A:[k,m]` (the transposed operand
/// of `gemm_tn`) into a p-major `[k, mr]` panel, pre-scaled by `alpha`.
#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn pack_a_t(
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    h: usize,
    alpha: f32,
    mr: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), k * mr);
    for p in 0..k {
        let arow = &a[p * m + i0..p * m + i0 + h];
        let dst = &mut out[p * mr..(p + 1) * mr];
        for (d, &v) in dst[..h].iter_mut().zip(arow) {
            *d = alpha * v;
        }
        dst[h..].fill(0.0);
    }
}

// ---- micro-kernel --------------------------------------------------------

/// How the register tile is seeded and written back.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Accum {
    /// Seed `acc = β·c` (0 when β = 0, clobbering NaNs) and store `acc`
    /// directly — the `gemm`/`gemm_tn` flavour, whose A panels carry the
    /// α pre-scale.
    SeededByBeta { beta: f32 },
    /// Seed `acc = 0`, store `α·acc + β·c` (just `α·acc` when β = 0) —
    /// the `gemm_nt` flavour, matching its historical dot-product shape.
    ScaledOnStore { alpha: f32, beta: f32 },
}

/// The scalar register-tiled inner kernel: one `rows×cols` corner of an
/// `SCALAR_MR×SCALAR_NR` tile of `C`, accumulated over the full reduction
/// dimension.
///
/// The `p` loop walks the packed panels with fixed `MR`/`NR` bounds, which
/// LLVM unrolls into `f32`-lane FMAs-without-contraction (plain mul+add,
/// so results are reproducible across targets). Each element's terms are
/// added in `p` order — the determinism contract of the module docs.
#[allow(clippy::needless_range_loop)] // fixed-bound lattice, kept explicit for the vectorizer
#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn micro_kernel_scalar(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    row0: usize,
    col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
    k: usize,
    mode: Accum,
) {
    const MR: usize = SCALAR_MR;
    const NR: usize = SCALAR_NR;
    let mut acc = [[0.0f32; NR]; MR];
    if let Accum::SeededByBeta { beta } = mode {
        if beta != 0.0 {
            for r in 0..rows {
                let crow = &c[(row0 + r) * n + col0..];
                for j in 0..cols {
                    acc[r][j] = beta * crow[j];
                }
            }
        }
    }
    for p in 0..k {
        let ap = &apack[p * MR..(p + 1) * MR];
        let bp = &bpack[p * NR..(p + 1) * NR];
        for r in 0..MR {
            let ar = ap[r];
            for j in 0..NR {
                acc[r][j] += ar * bp[j];
            }
        }
    }
    match mode {
        Accum::SeededByBeta { .. } => {
            for r in 0..rows {
                let crow = &mut c[(row0 + r) * n + col0..];
                crow[..cols].copy_from_slice(&acc[r][..cols]);
            }
        }
        Accum::ScaledOnStore { alpha, beta } => {
            for r in 0..rows {
                let crow = &mut c[(row0 + r) * n + col0..];
                for j in 0..cols {
                    crow[j] = if beta == 0.0 {
                        alpha * acc[r][j]
                    } else {
                        alpha * acc[r][j] + beta * crow[j]
                    };
                }
            }
        }
    }
}

/// Run one tile through the given tier's micro-kernel. Panels must have
/// been packed with the same tier's geometry.
#[allow(clippy::too_many_arguments)] // BLAS-style internals
#[inline]
fn run_tile(
    tier: KernelTier,
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    row0: usize,
    col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
    k: usize,
    mode: Accum,
) {
    match tier {
        KernelTier::Scalar => {
            micro_kernel_scalar(apack, bpack, c, row0, col0, n, rows, cols, k, mode)
        }
        #[cfg(target_arch = "x86_64")]
        // Safety: the dispatcher (and the `with_tier` entry points) only
        // hand out AVX2 tiers after the CPUID check.
        KernelTier::Avx2 => unsafe {
            crate::gemm_avx2::tile_avx2(apack, bpack, c, row0, col0, n, rows, cols, k, mode)
        },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2Fma => unsafe {
            crate::gemm_avx2::tile_avx2_fma(apack, bpack, c, row0, col0, n, rows, cols, k, mode)
        },
        #[cfg(not(target_arch = "x86_64"))]
        KernelTier::Avx2 | KernelTier::Avx2Fma => {
            unreachable!("AVX2 tiers are never selected off x86_64")
        }
    }
}

// ---- small-problem scalar kernels ---------------------------------------

/// One row of the streaming `gemm` kernel:
/// `crow = Σ_p (α·a[p])·B[p, :] + β·crow`, terms added in `p` order.
#[inline]
fn gemm_row(arow: &[f32], b: &[f32], crow: &mut [f32], k: usize, n: usize, alpha: f32, beta: f32) {
    if beta == 0.0 {
        crow.fill(0.0);
    } else if beta != 1.0 {
        for cv in crow.iter_mut() {
            *cv *= beta;
        }
    }
    for (p, &ap) in arow.iter().enumerate().take(k) {
        let f = alpha * ap;
        let brow = &b[p * n..(p + 1) * n];
        for (cv, &bv) in crow.iter_mut().zip(brow) {
            *cv += f * bv;
        }
    }
}

#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn gemm_small(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    for i in 0..m {
        gemm_row(
            &a[i * k..(i + 1) * k],
            b,
            &mut c[i * n..(i + 1) * n],
            k,
            n,
            alpha,
            beta,
        );
    }
}

#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn gemm_nt_small(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            let cv = &mut c[i * n + j];
            *cv = if beta == 0.0 {
                alpha * acc
            } else {
                alpha * acc + beta * *cv
            };
        }
    }
}

#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn gemm_tn_small(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for cv in c.iter_mut() {
            *cv *= beta;
        }
    }
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let f = alpha * av;
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += f * bv;
            }
        }
    }
}

// ---- blocked serial drivers ----------------------------------------------

/// Pack every nr-wide panel of the B operand into `bpack`.
fn pack_b_all(b: &[f32], k: usize, n: usize, transposed: bool, nr: usize, bpack: &mut Vec<f32>) {
    let panels = n.div_ceil(nr);
    bpack.resize(panels * k * nr, 0.0);
    for pi in 0..panels {
        let j0 = pi * nr;
        let w = nr.min(n - j0);
        let panel = &mut bpack[pi * k * nr..(pi + 1) * k * nr];
        if transposed {
            pack_b_t(b, k, j0, w, nr, panel);
        } else {
            pack_b_n(b, k, n, j0, w, nr, panel);
        }
    }
}

/// Run the packed tiles for rows `i0..i0+h` of `C` (a multiple of the
/// tier's `MR` tall except at the tail). `pack_rows` fills the A panel for
/// one tile.
#[allow(clippy::too_many_arguments)] // BLAS-style internals
fn blocked_rows(
    tier: KernelTier,
    bpack: &[f32],
    c: &mut [f32],
    row_base: usize,
    rows: usize,
    k: usize,
    n: usize,
    mode: Accum,
    pack_rows: &dyn Fn(usize, usize, &mut [f32]),
) {
    let (mr, nr) = tier.tile();
    let mut apack = checkout_a();
    apack.resize(k * mr, 0.0);
    let panels = n.div_ceil(nr);
    let mut i0 = 0;
    while i0 < rows {
        let h = mr.min(rows - i0);
        pack_rows(row_base + i0, h, &mut apack);
        for pi in 0..panels {
            let j0 = pi * nr;
            let w = nr.min(n - j0);
            run_tile(
                tier,
                &apack,
                &bpack[pi * k * nr..(pi + 1) * k * nr],
                c,
                i0,
                j0,
                n,
                h,
                w,
                k,
                mode,
            );
        }
        i0 += mr;
    }
    checkin_a(apack);
}

/// Orientation-specific plumbing for the blocked and parallel drivers.
#[derive(Clone, Copy)]
enum Orient {
    Nn,
    Nt,
    Tn,
}

#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    tier: KernelTier,
    orient: Orient,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    let (mr, nr) = tier.tile();
    let mut bpack = checkout_b();
    pack_b_all(b, k, n, matches!(orient, Orient::Nt), nr, &mut bpack);
    let mode = match orient {
        Orient::Nn | Orient::Tn => Accum::SeededByBeta { beta },
        Orient::Nt => Accum::ScaledOnStore { alpha, beta },
    };
    let pack_rows: &dyn Fn(usize, usize, &mut [f32]) = match orient {
        Orient::Nn => &|i0, h, out| pack_a_n(a, k, i0, h, alpha, mr, out),
        Orient::Nt => &|i0, h, out| pack_a_n(a, k, i0, h, 1.0, mr, out),
        Orient::Tn => &|i0, h, out| pack_a_t(a, m, k, i0, h, alpha, mr, out),
    };
    blocked_rows(tier, &bpack, c, 0, m, k, n, mode, pack_rows);
    checkin_b(bpack);
}

#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    tier: KernelTier,
    orient: Orient,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    let (mr, nr) = tier.tile();
    let mut bpack_own = checkout_b();
    pack_b_all(b, k, n, matches!(orient, Orient::Nt), nr, &mut bpack_own);
    let bpack = &bpack_own[..];
    let mode = match orient {
        Orient::Nn | Orient::Tn => Accum::SeededByBeta { beta },
        Orient::Nt => Accum::ScaledOnStore { alpha, beta },
    };
    // Split C into MR-row bands; each band packs its own A panel from a
    // worker-local buffer and walks the shared packed B. Accumulation
    // order per element is independent of the banding, so this is
    // bit-identical to the serial driver for any thread count.
    c.par_chunks_mut(mr * n)
        .enumerate()
        .for_each(|(band, cband)| {
            let row_base = band * mr;
            let rows = cband.len() / n;
            let pack_rows: &dyn Fn(usize, usize, &mut [f32]) = match orient {
                Orient::Nn => &|i0, h, out| pack_a_n(a, k, i0, h, alpha, mr, out),
                Orient::Nt => &|i0, h, out| pack_a_n(a, k, i0, h, 1.0, mr, out),
                Orient::Tn => &|i0, h, out| pack_a_t(a, m, k, i0, h, alpha, mr, out),
            };
            blocked_rows(tier, bpack, cband, row_base, rows, k, n, mode, pack_rows);
        });
    checkin_b(bpack_own);
}

// ---- pre-packed B panels -------------------------------------------------

/// Pre-packed B-operand panels for reuse across GEMM calls.
///
/// Packing the B operand into p-major `[k, NR]` panels is `O(k·n)` work the
/// blocked kernels normally redo on every call. When the same matrix is the
/// B operand of many GEMMs — a layer's weights across the batches of an
/// evaluation pass, or across the samples of a training step before the
/// batched rewrite — packing it **once** and replaying the panels amortizes
/// that cost to zero. The buffer is owned and grow-only, so steady-state
/// repacks (same or smaller shape) never touch the allocator.
///
/// Panels are laid out for the kernel tier that was active at pack time
/// ([`crate::active_tier`]; the tier is process-constant, so pack and
/// replay always agree) and [`PackedPanels::pack_count`] counts actual
/// packs, so callers keying the pack on a content hash can observe reuse.
///
/// Results are **bit-identical** to the unpacked entry points: the panels
/// are produced by the same packing routines and consumed by the same
/// micro-kernel in the same order (see the module-level determinism
/// contract; `packed_kernels_are_bit_identical` asserts it).
#[derive(Debug, Clone, Default)]
pub struct PackedPanels {
    buf: Vec<f32>,
    k: usize,
    n: usize,
    tier: KernelTier,
    packs: u64,
}

impl PackedPanels {
    /// An empty pack (no buffer until the first `pack_*`).
    pub fn new() -> Self {
        PackedPanels::default()
    }

    /// Pack a row-major `B:[k, n]` — the operand shape of [`gemm`] /
    /// [`par_gemm_packed`].
    pub fn pack_from_b(&mut self, b: &[f32], k: usize, n: usize) {
        assert_eq!(b.len(), k * n, "pack_from_b: bad B length");
        let tier = active_tier();
        pack_b_all(b, k, n, false, tier.tile().1, &mut self.buf);
        self.k = k;
        self.n = n;
        self.tier = tier;
        self.packs += 1;
    }

    /// Pack a row-major `B:[n, k]` (the transposed operand of [`gemm_nt`] /
    /// [`par_gemm_nt_packed`]).
    pub fn pack_from_bt(&mut self, b: &[f32], k: usize, n: usize) {
        assert_eq!(b.len(), n * k, "pack_from_bt: bad B length");
        let tier = active_tier();
        pack_b_all(b, k, n, true, tier.tile().1, &mut self.buf);
        self.k = k;
        self.n = n;
        self.tier = tier;
        self.packs += 1;
    }

    /// Reduction dimension of the packed operand.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count of the packed operand.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// True when nothing has been packed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.k == 0 || self.n == 0
    }

    /// Number of actual `pack_*` calls performed over this pack's lifetime
    /// — the observable for content-hash pack-reuse tests.
    #[inline]
    pub fn pack_count(&self) -> u64 {
        self.packs
    }

    /// Heap bytes held by the panel buffer (capacity accounting).
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<f32>()
    }
}

/// Shared driver for the pre-packed entry points: identical banding and
/// dispatch to [`gemm_parallel`] / [`gemm_blocked`], minus the B pack.
fn gemm_prepacked(
    orient: Orient,
    a: &[f32],
    bp: &PackedPanels,
    c: &mut [f32],
    m: usize,
    alpha: f32,
    beta: f32,
) {
    let (k, n) = (bp.k, bp.n);
    // Consume with the tier the panels were packed for (process-constant).
    let tier = bp.tier;
    let mr = tier.tile().0;
    assert_eq!(a.len(), m * k, "gemm_prepacked: bad A length");
    assert_eq!(c.len(), m * n, "gemm_prepacked: bad C length");
    let bpack = &bp.buf[..];
    let mode = match orient {
        Orient::Nn | Orient::Tn => Accum::SeededByBeta { beta },
        Orient::Nt => Accum::ScaledOnStore { alpha, beta },
    };
    let pack_rows: &(dyn Fn(usize, usize, &mut [f32]) + Sync) = match orient {
        Orient::Nn => &|i0, h, out| pack_a_n(a, k, i0, h, alpha, mr, out),
        Orient::Nt => &|i0, h, out| pack_a_n(a, k, i0, h, 1.0, mr, out),
        Orient::Tn => unreachable!("prepacked Tn orientation is not exposed"),
    };
    if parallel_worthwhile(m, k, n, mr) {
        c.par_chunks_mut(mr * n)
            .enumerate()
            .for_each(|(band, cband)| {
                let row_base = band * mr;
                let rows = cband.len() / n;
                blocked_rows(tier, bpack, cband, row_base, rows, k, n, mode, pack_rows);
            });
    } else {
        blocked_rows(tier, bpack, c, 0, m, k, n, mode, pack_rows);
    }
}

/// `C = alpha * A @ B + beta * C` against pre-packed `B` panels
/// ([`PackedPanels::pack_from_b`]). Bit-identical to [`par_gemm`] on the
/// same logical operands, for any problem size and thread count.
pub fn par_gemm_packed(
    a: &[f32],
    bp: &PackedPanels,
    c: &mut [f32],
    m: usize,
    alpha: f32,
    beta: f32,
) {
    gemm_prepacked(Orient::Nn, a, bp, c, m, alpha, beta);
}

/// `C = alpha * A @ Bᵀ + beta * C` against pre-packed `Bᵀ` panels
/// ([`PackedPanels::pack_from_bt`]). Bit-identical to [`par_gemm_nt`] on
/// the same logical operands, for any problem size and thread count.
pub fn par_gemm_nt_packed(
    a: &[f32],
    bp: &PackedPanels,
    c: &mut [f32],
    m: usize,
    alpha: f32,
    beta: f32,
) {
    gemm_prepacked(Orient::Nt, a, bp, c, m, alpha, beta);
}

// ---- explicit-tier entry points ------------------------------------------

/// [`gemm`] forced through a specific kernel tier's blocked path (no
/// small-problem shortcut), so tests and benches can compare tiers on the
/// same operands. Panics if the tier is not executable on this CPU.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_with_tier(
    tier: KernelTier,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert!(tier.available(), "kernel tier {} unavailable", tier.name());
    assert_eq!(a.len(), m * k, "gemm_with_tier: bad A length");
    assert_eq!(b.len(), k * n, "gemm_with_tier: bad B length");
    assert_eq!(c.len(), m * n, "gemm_with_tier: bad C length");
    gemm_blocked(tier, Orient::Nn, a, b, c, m, k, n, alpha, beta);
}

/// [`gemm_nt`] forced through a specific kernel tier (see
/// [`gemm_with_tier`]).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_nt_with_tier(
    tier: KernelTier,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert!(tier.available(), "kernel tier {} unavailable", tier.name());
    assert_eq!(a.len(), m * k, "gemm_nt_with_tier: bad A length");
    assert_eq!(b.len(), n * k, "gemm_nt_with_tier: bad B length");
    assert_eq!(c.len(), m * n, "gemm_nt_with_tier: bad C length");
    gemm_blocked(tier, Orient::Nt, a, b, c, m, k, n, alpha, beta);
}

/// [`gemm_tn`] forced through a specific kernel tier (see
/// [`gemm_with_tier`]).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_tn_with_tier(
    tier: KernelTier,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert!(tier.available(), "kernel tier {} unavailable", tier.name());
    assert_eq!(a.len(), k * m, "gemm_tn_with_tier: bad A length");
    assert_eq!(b.len(), k * n, "gemm_tn_with_tier: bad B length");
    assert_eq!(c.len(), m * n, "gemm_tn_with_tier: bad C length");
    gemm_blocked(tier, Orient::Tn, a, b, c, m, k, n, alpha, beta);
}

// ---- public entry points -------------------------------------------------

/// `C = alpha * A @ B + beta * C` on raw row-major slices.
///
/// `a` is `[m, k]`, `b` is `[k, n]`, `c` is `[m, n]`. Dispatches between a
/// streaming scalar kernel and the packed blocked kernel by problem size;
/// the blocked kernel runs the process's [`crate::active_tier`]. All
/// default paths produce bit-identical results (see the module docs).
///
/// # Panics
/// Panics if slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "gemm: bad A length");
    assert_eq!(b.len(), k * n, "gemm: bad B length");
    assert_eq!(c.len(), m * n, "gemm: bad C length");
    if m * k * n < BLOCKED_MIN_FLOPS {
        gemm_small(a, b, c, m, k, n, alpha, beta);
    } else {
        gemm_blocked(active_tier(), Orient::Nn, a, b, c, m, k, n, alpha, beta);
    }
}

/// `C = alpha * A @ Bᵀ + beta * C`; `a` is `[m, k]`, `b` is `[n, k]`,
/// `c` is `[m, n]` — the input-gradient orientation (`dX = dY @ Wᵀ`).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "gemm_nt: bad A length");
    assert_eq!(b.len(), n * k, "gemm_nt: bad B length");
    assert_eq!(c.len(), m * n, "gemm_nt: bad C length");
    if m * k * n < BLOCKED_MIN_FLOPS {
        gemm_nt_small(a, b, c, m, k, n, alpha, beta);
    } else {
        gemm_blocked(active_tier(), Orient::Nt, a, b, c, m, k, n, alpha, beta);
    }
}

/// `C = alpha * Aᵀ @ B + beta * C`; `a` is `[k, m]`, `b` is `[k, n]`,
/// `c` is `[m, n]` — the weight-gradient orientation (`dW = Xᵀ @ dY`).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), k * m, "gemm_tn: bad A length");
    assert_eq!(b.len(), k * n, "gemm_tn: bad B length");
    assert_eq!(c.len(), m * n, "gemm_tn: bad C length");
    if m * k * n < BLOCKED_MIN_FLOPS {
        gemm_tn_small(a, b, c, m, k, n, alpha, beta);
    } else {
        gemm_blocked(active_tier(), Orient::Tn, a, b, c, m, k, n, alpha, beta);
    }
}

/// True when the problem is worth fanning out to the pool.
#[inline]
fn parallel_worthwhile(m: usize, k: usize, n: usize, mr: usize) -> bool {
    m * k * n >= PAR_FLOP_THRESHOLD && m > mr && rayon::current_num_threads() > 1
}

/// Parallel version of [`gemm`]: MR-row bands of `C` are distributed over
/// rayon. Falls back to the serial kernel for small problems. Results are
/// bit-identical to [`gemm`] for any thread count.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn par_gemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "par_gemm: bad A length");
    assert_eq!(b.len(), k * n, "par_gemm: bad B length");
    assert_eq!(c.len(), m * n, "par_gemm: bad C length");
    let tier = active_tier();
    if parallel_worthwhile(m, k, n, tier.tile().0) {
        gemm_parallel(tier, Orient::Nn, a, b, c, m, k, n, alpha, beta);
    } else {
        gemm(a, b, c, m, k, n, alpha, beta);
    }
}

/// Parallel version of [`gemm_nt`]; bit-identical to the serial kernel.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn par_gemm_nt(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "par_gemm_nt: bad A length");
    assert_eq!(b.len(), n * k, "par_gemm_nt: bad B length");
    assert_eq!(c.len(), m * n, "par_gemm_nt: bad C length");
    let tier = active_tier();
    if parallel_worthwhile(m, k, n, tier.tile().0) {
        gemm_parallel(tier, Orient::Nt, a, b, c, m, k, n, alpha, beta);
    } else {
        gemm_nt(a, b, c, m, k, n, alpha, beta);
    }
}

/// Parallel version of [`gemm_tn`]; bit-identical to the serial kernel.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn par_gemm_tn(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), k * m, "par_gemm_tn: bad A length");
    assert_eq!(b.len(), k * n, "par_gemm_tn: bad B length");
    assert_eq!(c.len(), m * n, "par_gemm_tn: bad C length");
    let tier = active_tier();
    if parallel_worthwhile(m, k, n, tier.tile().0) {
        gemm_parallel(tier, Orient::Tn, a, b, c, m, k, n, alpha, beta);
    } else {
        gemm_tn(a, b, c, m, k, n, alpha, beta);
    }
}

/// Matrix product of two rank-≤2 tensors: `A[m,k] @ B[k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = a.shape_obj().as_matrix()?;
    let (kb, n) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    par_gemm(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

/// `A[m,k] @ B[n,k]ᵀ -> [m,n]` on tensors.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = a.shape_obj().as_matrix()?;
    let (n, kb) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    par_gemm_nt(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

/// `A[k,m]ᵀ @ B[k,n] -> [m,n]` on tensors.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = a.shape_obj().as_matrix()?;
    let (kb, n) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    par_gemm_tn(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_mat(m: usize, n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(vec![m, n], 1.0, &mut rng)
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        random_mat(1, n, seed).into_vec()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    /// Shapes spanning the small-kernel regime, MR/NR edge cases for both
    /// tile geometries (4×8 scalar, 6×16 AVX2) and the blocked regime
    /// (33·17·9 < 2^13 ≤ 16·64·16).
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 4),
        (5, 7, 3),
        (6, 5, 16),
        (7, 9, 17),
        (16, 16, 16),
        (33, 17, 9),
        (16, 64, 16),
        (37, 41, 23),
        (64, 50, 48),
        (96, 80, 72),
    ];

    const AB_CASES: &[(f32, f32)] = &[(1.0, 0.0), (2.0, 0.5), (1.0, 1.0), (-0.5, 2.0)];

    /// The central proof: every optimized orientation, serial and
    /// parallel, is **exactly** (bit-for-bit) the naive reference kernel,
    /// across the small/blocked dispatch boundary and all α/β cases —
    /// under whatever kernel tier the process dispatched to (the FMA tier
    /// is opt-in and excluded from this contract).
    #[test]
    fn blocked_kernels_are_bit_identical_to_reference() {
        assert!(
            active_tier().bit_identical(),
            "tests assume a bit-identical default tier"
        );
        for &(m, k, n) in SHAPES {
            for &(alpha, beta) in AB_CASES {
                let seed = (m * 31 + k * 7 + n) as u64;
                let a_nn = random_vec(m * k, seed);
                let b_nn = random_vec(k * n, seed + 1);
                let c0 = random_vec(m * n, seed + 2);

                let mut want = c0.clone();
                reference::gemm(&a_nn, &b_nn, &mut want, m, k, n, alpha, beta);
                for kernel in [gemm, par_gemm] {
                    let mut got = c0.clone();
                    kernel(&a_nn, &b_nn, &mut got, m, k, n, alpha, beta);
                    assert_eq!(got, want, "gemm {m}x{k}x{n} α={alpha} β={beta}");
                }

                let b_t = random_vec(n * k, seed + 3);
                let mut want = c0.clone();
                reference::gemm_nt(&a_nn, &b_t, &mut want, m, k, n, alpha, beta);
                for kernel in [gemm_nt, par_gemm_nt] {
                    let mut got = c0.clone();
                    kernel(&a_nn, &b_t, &mut got, m, k, n, alpha, beta);
                    assert_eq!(got, want, "gemm_nt {m}x{k}x{n} α={alpha} β={beta}");
                }

                let a_t = random_vec(k * m, seed + 4);
                let mut want = c0.clone();
                reference::gemm_tn(&a_t, &b_nn, &mut want, m, k, n, alpha, beta);
                for kernel in [gemm_tn, par_gemm_tn] {
                    let mut got = c0.clone();
                    kernel(&a_t, &b_nn, &mut got, m, k, n, alpha, beta);
                    assert_eq!(got, want, "gemm_tn {m}x{k}x{n} α={alpha} β={beta}");
                }
            }
        }
    }

    /// Cross-tier bit-identity at the tensor-crate level: the explicit-tier
    /// entry points must agree exactly between `Scalar` and `Avx2` (when
    /// the host has AVX2) on every shape and α/β case. The exhaustive
    /// property-based version lives in `tests/kernel_dispatch.rs`.
    #[test]
    fn avx2_tier_is_bit_identical_to_scalar_tier() {
        if !KernelTier::Avx2.available() {
            return; // nothing to compare on this host
        }
        for &(m, k, n) in SHAPES {
            for &(alpha, beta) in AB_CASES {
                let seed = (m * 11 + k * 3 + n) as u64;
                let a = random_vec(m * k, seed);
                let b = random_vec(k * n, seed + 1);
                let bt = random_vec(n * k, seed + 2);
                let at = random_vec(k * m, seed + 3);
                let c0 = random_vec(m * n, seed + 4);

                let mut s = c0.clone();
                let mut v = c0.clone();
                gemm_with_tier(KernelTier::Scalar, &a, &b, &mut s, m, k, n, alpha, beta);
                gemm_with_tier(KernelTier::Avx2, &a, &b, &mut v, m, k, n, alpha, beta);
                assert_eq!(s, v, "gemm tiers diverged {m}x{k}x{n} α={alpha} β={beta}");

                let mut s = c0.clone();
                let mut v = c0.clone();
                gemm_nt_with_tier(KernelTier::Scalar, &a, &bt, &mut s, m, k, n, alpha, beta);
                gemm_nt_with_tier(KernelTier::Avx2, &a, &bt, &mut v, m, k, n, alpha, beta);
                assert_eq!(
                    s, v,
                    "gemm_nt tiers diverged {m}x{k}x{n} α={alpha} β={beta}"
                );

                let mut s = c0.clone();
                let mut v = c0.clone();
                gemm_tn_with_tier(KernelTier::Scalar, &at, &b, &mut s, m, k, n, alpha, beta);
                gemm_tn_with_tier(KernelTier::Avx2, &at, &b, &mut v, m, k, n, alpha, beta);
                assert_eq!(
                    s, v,
                    "gemm_tn tiers diverged {m}x{k}x{n} α={alpha} β={beta}"
                );
            }
        }
    }

    /// The pre-packed entry points replay the same panels through the same
    /// micro-kernel, so they must be **exactly** the unpacked kernels on
    /// every shape (small-kernel regime included) and α/β case — and a
    /// pack buffer reused across shapes must not leak stale panels.
    #[test]
    fn packed_kernels_are_bit_identical() {
        let mut bp = PackedPanels::new();
        for &(m, k, n) in SHAPES {
            for &(alpha, beta) in AB_CASES {
                let seed = (m * 13 + k * 5 + n) as u64;
                let a = random_vec(m * k, seed);
                let c0 = random_vec(m * n, seed + 2);

                let b_nn = random_vec(k * n, seed + 1);
                let mut want = c0.clone();
                par_gemm(&a, &b_nn, &mut want, m, k, n, alpha, beta);
                bp.pack_from_b(&b_nn, k, n);
                let mut got = c0.clone();
                par_gemm_packed(&a, &bp, &mut got, m, alpha, beta);
                assert_eq!(got, want, "packed gemm {m}x{k}x{n} α={alpha} β={beta}");

                let b_t = random_vec(n * k, seed + 3);
                let mut want = c0.clone();
                par_gemm_nt(&a, &b_t, &mut want, m, k, n, alpha, beta);
                bp.pack_from_bt(&b_t, k, n);
                let mut got = c0.clone();
                par_gemm_nt_packed(&a, &bp, &mut got, m, alpha, beta);
                assert_eq!(got, want, "packed gemm_nt {m}x{k}x{n} α={alpha} β={beta}");
            }
        }
    }

    #[test]
    fn packed_panels_buffer_is_grow_only() {
        let mut bp = PackedPanels::new();
        assert_eq!(bp.pack_count(), 0);
        let b = random_vec(64 * 48, 7);
        bp.pack_from_b(&b, 64, 48);
        let cap = bp.capacity_bytes();
        assert!(cap > 0);
        // Re-packing the same (or a smaller) shape must reuse the buffer.
        bp.pack_from_b(&b, 64, 48);
        assert_eq!(bp.capacity_bytes(), cap);
        bp.pack_from_bt(&b[..8 * 6], 6, 8);
        assert_eq!(bp.capacity_bytes(), cap);
        assert_eq!((bp.k(), bp.n()), (6, 8));
        assert_eq!(bp.pack_count(), 3);
    }

    #[test]
    fn gemm_matches_reference() {
        for &(m, k, n) in SHAPES {
            let a = random_mat(m, k, 1);
            let b = random_mat(k, n, 2);
            let mut expected = vec![0.0f32; m * n];
            reference::gemm(a.data(), b.data(), &mut expected, m, k, n, 1.0, 0.0);
            let got = matmul(&a, &b).unwrap();
            assert_close(got.data(), &expected, 1e-5);
        }
    }

    #[test]
    fn par_gemm_bit_identical_to_serial() {
        let (m, k, n) = (96, 80, 72); // above the parallel threshold
        let a = random_mat(m, k, 3);
        let b = random_mat(k, n, 4);
        let mut c_serial = vec![0.0f32; m * n];
        gemm(a.data(), b.data(), &mut c_serial, m, k, n, 1.0, 0.0);
        let mut c_par = vec![0.0f32; m * n];
        par_gemm(a.data(), b.data(), &mut c_par, m, k, n, 1.0, 0.0);
        assert_eq!(c_serial, c_par, "parallel kernel must be bit-identical");
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let (m, k, n) = (4, 6, 5);
        let a = random_mat(m, k, 5);
        let bt = random_mat(n, k, 6);
        // Build B from Bᵀ to reuse the plain reference kernel.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt.data()[j * k + p];
            }
        }
        let mut expected = vec![0.0f32; m * n];
        reference::gemm(a.data(), &b, &mut expected, m, k, n, 1.0, 0.0);
        let got = matmul_nt(&a, &bt).unwrap();
        assert_close(got.data(), &expected, 1e-5);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let (m, k, n) = (4, 6, 5);
        let at = random_mat(k, m, 7);
        let b = random_mat(k, n, 8);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at.data()[p * m + i];
            }
        }
        let mut expected = vec![0.0f32; m * n];
        reference::gemm(&a, b.data(), &mut expected, m, k, n, 1.0, 0.0);
        let got = matmul_tn(&at, &b).unwrap();
        assert_close(got.data(), &expected, 1e-5);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        // 1x2 @ 2x1 = [11]
        let mut c = [10.0f32];
        gemm(&a, &b, &mut c, 1, 2, 1, 2.0, 0.5);
        // 2 * 11 + 0.5 * 10 = 27
        assert_eq!(c[0], 27.0);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0f32];
        let b = [1.0f32];
        let mut c = [f32::NAN];
        gemm(&a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
        assert_eq!(c[0], 1.0, "beta=0 must clobber NaN contents");
        let mut c = [f32::NAN];
        gemm_nt(&a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
        assert_eq!(c[0], 1.0);
        let mut c = [f32::NAN];
        gemm_tn(&a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
        assert_eq!(c[0], 1.0);
        // And through the blocked tier paths too (no small-kernel shortcut).
        for tier in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx2Fma] {
            if !tier.available() {
                continue;
            }
            let mut c = [f32::NAN];
            gemm_with_tier(tier, &a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
            assert_eq!(c[0], 1.0, "tier {} must clobber NaN", tier.name());
            let mut c = [f32::NAN];
            gemm_nt_with_tier(tier, &a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
            assert_eq!(c[0], 1.0);
            let mut c = [f32::NAN];
            gemm_tn_with_tier(tier, &a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
            assert_eq!(c[0], 1.0);
        }
    }

    #[test]
    fn vector_is_treated_as_row() {
        let v = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let m = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let out = matmul(&v, &m).unwrap();
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[4., 5.]);
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_nt(&a, &Tensor::zeros(vec![2, 4])).is_err());
        assert!(matmul_tn(&a, &Tensor::zeros(vec![4, 2])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_mat(8, 8, 11);
        let mut eye = Tensor::zeros(vec![8, 8]);
        for i in 0..8 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        let out = matmul(&a, &eye).unwrap();
        assert_close(out.data(), a.data(), 1e-6);
    }

    #[test]
    fn repeated_calls_reuse_pack_buffers() {
        // Steady-state blocked kernels must not allocate: run once to warm
        // the thread-local pools, then observe the buffers are recycled
        // (indirectly — results stay exact across many mixed-size calls).
        let (m, k, n) = (32, 64, 24);
        let a = random_vec(m * k, 90);
        let b = random_vec(k * n, 91);
        let mut first = vec![0.0f32; m * n];
        gemm(&a, &b, &mut first, m, k, n, 1.0, 0.0);
        for _ in 0..4 {
            let mut again = vec![0.0f32; m * n];
            gemm(&a, &b, &mut again, m, k, n, 1.0, 0.0);
            assert_eq!(first, again);
            // Interleave a different shape to force re-packing.
            let mut small = vec![0.0f32; 4];
            gemm(&a[..4], &b[..4], &mut small, 2, 2, 2, 1.0, 0.0);
        }
    }

    /// The FMA tier (when the host supports it) must agree with the scalar
    /// reference to tight relative error — fused contraction reorders
    /// rounding, never magnitude.
    #[test]
    fn fma_tier_is_close_but_not_required_identical() {
        if !KernelTier::Avx2Fma.available() {
            return;
        }
        let (m, k, n) = (37, 41, 23);
        let a = random_vec(m * k, 201);
        let b = random_vec(k * n, 202);
        let mut want = vec![0.0f32; m * n];
        reference::gemm(&a, &b, &mut want, m, k, n, 1.0, 0.0);
        let mut got = vec![0.0f32; m * n];
        gemm_with_tier(KernelTier::Avx2Fma, &a, &b, &mut got, m, k, n, 1.0, 0.0);
        assert_close(&got, &want, 1e-5);
    }
}
