//! GEMM kernels in the three orientations required by backpropagation.
//!
//! * `gemm`    — `C = α·A·B + β·C` with `A:[m,k]`, `B:[k,n]` (forward pass)
//! * `gemm_nt` — `C = α·A·Bᵀ + β·C` with `A:[m,k]`, `B:[n,k]` (input grads)
//! * `gemm_tn` — `C = α·Aᵀ·B + β·C` with `A:[k,m]`, `B:[k,n]` (weight grads)
//!
//! All kernels run on row-major slices. `gemm` and `gemm_tn` use an `i-p-j`
//! loop order whose inner loop is a contiguous `axpy` over a row of `C`;
//! `gemm_nt` reduces rows against rows. Both patterns stream memory
//! contiguously so LLVM vectorizes them without manual SIMD.
//!
//! [`par_gemm`] splits the rows of `C` across the rayon pool; per-row work
//! is independent so the result is bit-identical to the serial kernel,
//! preserving the workspace-wide determinism guarantee.

use rayon::prelude::*;

use crate::{Result, Tensor, TensorError};

/// Minimum number of `m·k·n` multiply-adds before [`par_gemm`] fans out to
/// the rayon pool; below this the fork/join overhead dominates.
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// `C = alpha * A @ B + beta * C` on raw row-major slices.
///
/// `a` is `[m, k]`, `b` is `[k, n]`, `c` is `[m, n]`.
///
/// # Panics
/// Panics if slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "gemm: bad A length");
    assert_eq!(b.len(), k * n, "gemm: bad B length");
    assert_eq!(c.len(), m * n, "gemm: bad C length");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        gemm_row(arow, b, crow, k, n, alpha, beta);
    }
}

/// One row of the `gemm` kernel: `crow = alpha * arow @ B + beta * crow`.
#[inline]
fn gemm_row(arow: &[f32], b: &[f32], crow: &mut [f32], k: usize, n: usize, alpha: f32, beta: f32) {
    if beta == 0.0 {
        crow.fill(0.0);
    } else if beta != 1.0 {
        for cv in crow.iter_mut() {
            *cv *= beta;
        }
    }
    for (p, &ap) in arow.iter().enumerate().take(k) {
        let f = alpha * ap;
        if f == 0.0 {
            continue;
        }
        let brow = &b[p * n..(p + 1) * n];
        for (cv, &bv) in crow.iter_mut().zip(brow) {
            *cv += f * bv;
        }
    }
}

/// Parallel version of [`gemm`]: rows of `C` are distributed over rayon.
///
/// Falls back to the serial kernel for small problems where the fork/join
/// overhead exceeds the arithmetic. Results are bit-identical to [`gemm`].
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn par_gemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "par_gemm: bad A length");
    assert_eq!(b.len(), k * n, "par_gemm: bad B length");
    assert_eq!(c.len(), m * n, "par_gemm: bad C length");
    if m * k * n < PAR_FLOP_THRESHOLD || m < 2 {
        gemm(a, b, c, m, k, n, alpha, beta);
        return;
    }
    c.par_chunks_mut(n)
        .zip(a.par_chunks(k))
        .for_each(|(crow, arow)| gemm_row(arow, b, crow, k, n, alpha, beta));
}

/// `C = alpha * A @ Bᵀ + beta * C`; `a` is `[m, k]`, `b` is `[n, k]`, `c` is `[m, n]`.
///
/// Computes `c[i, j] = Σ_p a[i, p] · b[j, p]` — a dot product of two
/// contiguous rows, the natural orientation for input-gradient passes
/// (`dX = dY @ Wᵀ`).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), m * k, "gemm_nt: bad A length");
    assert_eq!(b.len(), n * k, "gemm_nt: bad B length");
    assert_eq!(c.len(), m * n, "gemm_nt: bad C length");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let d: f32 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            let cv = &mut c[i * n + j];
            *cv = alpha * d + beta * *cv;
        }
    }
}

/// `C = alpha * Aᵀ @ B + beta * C`; `a` is `[k, m]`, `b` is `[k, n]`, `c` is `[m, n]`.
///
/// Computes `c[i, j] = Σ_p a[p, i] · b[p, j]` by streaming over `p` and
/// accumulating rank-1 updates — the orientation of weight-gradient passes
/// (`dW = Xᵀ @ dY`).
#[allow(clippy::too_many_arguments)] // BLAS-style signature, on purpose
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    beta: f32,
) {
    assert_eq!(a.len(), k * m, "gemm_tn: bad A length");
    assert_eq!(b.len(), k * n, "gemm_tn: bad B length");
    assert_eq!(c.len(), m * n, "gemm_tn: bad C length");
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for cv in c.iter_mut() {
            *cv *= beta;
        }
    }
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let f = alpha * av;
            if f == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += f * bv;
            }
        }
    }
}

/// Matrix product of two rank-≤2 tensors: `A[m,k] @ B[k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = a.shape_obj().as_matrix()?;
    let (kb, n) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    par_gemm(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

/// `A[m,k] @ B[n,k]ᵀ -> [m,n]` on tensors.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = a.shape_obj().as_matrix()?;
    let (n, kb) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    gemm_nt(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

/// `A[k,m]ᵀ @ B[k,n] -> [m,n]` on tensors.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = a.shape_obj().as_matrix()?;
    let (kb, n) = b.shape_obj().as_matrix()?;
    if ka != kb {
        return Err(TensorError::InnerDimMismatch {
            left_inner: ka,
            right_inner: kb,
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    gemm_tn(a.data(), b.data(), out.data_mut(), m, ka, n, 1.0, 0.0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive triple-loop reference used to validate the optimized kernels.
    fn reference_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn random_mat(m: usize, n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(vec![m, n], 1.0, &mut rng)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (5, 7, 3),
            (16, 16, 16),
            (33, 17, 9),
        ] {
            let a = random_mat(m, k, 1);
            let b = random_mat(k, n, 2);
            let expected = reference_gemm(a.data(), b.data(), m, k, n);
            let got = matmul(&a, &b).unwrap();
            assert_close(got.data(), &expected, 1e-5);
        }
    }

    #[test]
    fn par_gemm_bit_identical_to_serial() {
        let (m, k, n) = (96, 80, 72); // above the parallel threshold
        let a = random_mat(m, k, 3);
        let b = random_mat(k, n, 4);
        let mut c_serial = vec![0.0f32; m * n];
        gemm(a.data(), b.data(), &mut c_serial, m, k, n, 1.0, 0.0);
        let mut c_par = vec![0.0f32; m * n];
        par_gemm(a.data(), b.data(), &mut c_par, m, k, n, 1.0, 0.0);
        assert_eq!(c_serial, c_par, "parallel kernel must be bit-identical");
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let (m, k, n) = (4, 6, 5);
        let a = random_mat(m, k, 5);
        let bt = random_mat(n, k, 6);
        // Build B from Bᵀ to reuse the reference kernel.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt.data()[j * k + p];
            }
        }
        let expected = reference_gemm(a.data(), &b, m, k, n);
        let got = matmul_nt(&a, &bt).unwrap();
        assert_close(got.data(), &expected, 1e-5);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let (m, k, n) = (4, 6, 5);
        let at = random_mat(k, m, 7);
        let b = random_mat(k, n, 8);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at.data()[p * m + i];
            }
        }
        let expected = reference_gemm(&a, b.data(), m, k, n);
        let got = matmul_tn(&at, &b).unwrap();
        assert_close(got.data(), &expected, 1e-5);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        // 1x2 @ 2x1 = [11]
        let mut c = [10.0f32];
        gemm(&a, &b, &mut c, 1, 2, 1, 2.0, 0.5);
        // 2 * 11 + 0.5 * 10 = 27
        assert_eq!(c[0], 27.0);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0f32];
        let b = [1.0f32];
        let mut c = [f32::NAN];
        gemm(&a, &b, &mut c, 1, 1, 1, 1.0, 0.0);
        assert_eq!(c[0], 1.0, "beta=0 must clobber NaN contents");
    }

    #[test]
    fn vector_is_treated_as_row() {
        let v = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let m = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let out = matmul(&v, &m).unwrap();
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[4., 5.]);
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_nt(&a, &Tensor::zeros(vec![2, 4])).is_err());
        assert!(matmul_tn(&a, &Tensor::zeros(vec![4, 2])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_mat(8, 8, 11);
        let mut eye = Tensor::zeros(vec![8, 8]);
        for i in 0..8 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        let out = matmul(&a, &eye).unwrap();
        assert_close(out.data(), a.data(), 1e-6);
    }
}
