//! Elementwise tensor arithmetic and slice-level BLAS-1 style kernels.
//!
//! The slice kernels (`axpy`, `scale_assign`, `dot`, …) are the hot path of
//! federated aggregation: averaging 100 device models is nothing but a long
//! sequence of `axpy` over million-element parameter vectors. Inner loops
//! use `iter().zip()` so the compiler can vectorize without bounds checks.

use crate::{Result, Tensor};

/// Cheap 64-bit content hash of an `f32` slice: four independent FNV-1a
/// lanes over packed pairs of IEEE bit patterns, folded (with the length)
/// at the end. The four lanes break the serial multiply dependency chain
/// of classic FNV, so the hash runs at roughly one multiply per eight
/// bytes of *throughput* instead of one three-cycle multiply per element
/// of *latency* — it must stay far cheaper than the panel pack it guards.
/// No allocation.
///
/// Used to key packed-panel caches on weight *content* instead of a local
/// version counter, so handing out identical weights again (ring hops
/// relaying the same upstream model, eval sweeps over one global) is
/// recognized as a no-op. Distinct slices colliding would silently serve a
/// stale pack; at 64 bits that chance is ~2⁻⁶⁴ per comparison, far below
/// any hardware-error floor, and the hash covers the full slice so any
/// single changed element flips it. `-0.0` and `0.0` hash differently (bit
/// patterns differ) — callers relaying bit-exact models are unaffected.
pub fn content_hash_f32(data: &[f32]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
    ];
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        for (lane, pair) in lanes.iter_mut().zip(c.chunks_exact(2)) {
            let v = (pair[0].to_bits() as u64) | ((pair[1].to_bits() as u64) << 32);
            *lane = (*lane ^ v).wrapping_mul(PRIME);
        }
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        let lane = &mut lanes[i % 4];
        *lane = (*lane ^ (v.to_bits() as u64)).wrapping_mul(PRIME);
    }
    let mut h = data.len() as u64;
    for l in lanes {
        h = (h ^ l).wrapping_mul(PRIME);
    }
    h ^ (h >> 32)
}

/// `out = a + b` (allocating). Shapes must match.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.same_shape(b)?;
    let mut out = a.clone();
    add_assign(out.data_mut(), b.data());
    Ok(out)
}

/// `out = a - b` (allocating). Shapes must match.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.same_shape(b)?;
    let mut out = a.clone();
    sub_assign(out.data_mut(), b.data());
    Ok(out)
}

/// Elementwise product `a ⊙ b` (allocating). Shapes must match.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.same_shape(b)?;
    let mut out = a.clone();
    for (o, &bv) in out.data_mut().iter_mut().zip(b.data()) {
        *o *= bv;
    }
    Ok(out)
}

/// `alpha * a` (allocating).
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    let mut out = a.clone();
    scale_assign(out.data_mut(), alpha);
    out
}

/// `y += x` elementwise over slices.
///
/// # Panics
/// Panics if lengths differ (programming error, not a runtime condition).
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

/// `y -= x` elementwise over slices.
#[inline]
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "sub_assign length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv -= xv;
    }
}

/// `y = alpha * x + y` (BLAS axpy) over slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `y *= alpha` over a slice.
#[inline]
pub fn scale_assign(y: &mut [f32], alpha: f32) {
    for yv in y.iter_mut() {
        *yv *= alpha;
    }
}

/// Dot product of two slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Linear interpolation `y = (1 - t) * y + t * x` in place.
///
/// Used by asynchronous baselines (TAFedAvg) that mix an arriving device
/// model into the server model with a staleness-discounted factor `t`.
#[inline]
pub fn lerp(y: &mut [f32], x: &[f32], t: f32) {
    assert_eq!(y.len(), x.len(), "lerp length mismatch");
    let s = 1.0 - t;
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = s * *yv + t * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(vec![n], v).unwrap()
    }

    #[test]
    fn add_sub_hadamard() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[4., 10., 18.]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(vec![2, 2]);
        let b = Tensor::zeros(vec![4]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
    }

    #[test]
    fn scale_multiplies() {
        let a = t(vec![1., -2., 3.]);
        assert_eq!(scale(&a, -2.0).data(), &[-2., 4., -6.]);
    }

    #[test]
    fn axpy_matches_definition() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0, 31.5]);
    }

    #[test]
    fn dot_and_norm() {
        let a = [3.0f32, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(l2_norm(&a), 5.0);
    }

    #[test]
    fn lerp_endpoints() {
        let x = [2.0f32, 4.0];
        let mut y = [0.0f32, 0.0];
        lerp(&mut y, &x, 0.0);
        assert_eq!(y, [0.0, 0.0]);
        lerp(&mut y, &x, 1.0);
        assert_eq!(y, [2.0, 4.0]);
        let mut y = [0.0f32, 0.0];
        lerp(&mut y, &x, 0.25);
        assert_eq!(y, [0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_length_mismatch_panics() {
        let x = [1.0f32];
        let mut y = [1.0f32, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    fn content_hash_discriminates() {
        // Identical content hashes identically; any single-element flip —
        // in the 8-wide lane body or the remainder tail — changes it.
        for len in [0usize, 1, 3, 7, 8, 9, 16, 23, 1000] {
            let base: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            assert_eq!(content_hash_f32(&base), content_hash_f32(&base.clone()));
            for flip in [0usize, len / 2, len.saturating_sub(1)] {
                if len == 0 {
                    continue;
                }
                let mut changed = base.clone();
                changed[flip] += 1.0;
                assert_ne!(
                    content_hash_f32(&base),
                    content_hash_f32(&changed),
                    "len {len} flip {flip} not detected"
                );
            }
        }
        // Length-sensitive (zero padding is not free), and sign-of-zero
        // sensitive (bit patterns differ).
        assert_ne!(content_hash_f32(&[0.0; 4]), content_hash_f32(&[0.0; 5]));
        assert_ne!(
            content_hash_f32(&[0.0, 1.0]),
            content_hash_f32(&[-0.0, 1.0])
        );
    }
}
