//! Seeded random-number helpers.
//!
//! `rand_distr` is not part of the offline dependency set, so the normal
//! distribution is generated with the Box–Muller transform. All federated
//! experiments must be reproducible, so library code never touches
//! `thread_rng`; every sampler takes an explicit `Rng`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG used across the workspace.
///
/// A type alias keeps the choice in one place: `StdRng` is seedable,
/// portable across platforms and fast enough for data synthesis.
pub type TensorRng = StdRng;

/// Create a [`TensorRng`] from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> TensorRng {
    StdRng::seed_from_u64(seed)
}

/// One `N(0,1)` sample via Box–Muller.
///
/// Draws two uniforms and discards the second variate; callers filling
/// large buffers should prefer [`fill_normal`] which uses both.
pub fn normal_f32<R: Rng>(rng: &mut R) -> f32 {
    let (z0, _z1) = box_muller(rng);
    z0
}

/// Fill `buf` with i.i.d. `N(mean, std^2)` samples.
pub fn fill_normal<R: Rng>(buf: &mut [f32], mean: f32, std: f32, rng: &mut R) {
    let mut i = 0;
    while i + 1 < buf.len() {
        let (z0, z1) = box_muller(rng);
        buf[i] = mean + std * z0;
        buf[i + 1] = mean + std * z1;
        i += 2;
    }
    if i < buf.len() {
        let (z0, _) = box_muller(rng);
        buf[i] = mean + std * z0;
    }
}

/// Fill `buf` with i.i.d. `U[lo, hi)` samples.
pub fn fill_uniform<R: Rng>(buf: &mut [f32], lo: f32, hi: f32, rng: &mut R) {
    for x in buf.iter_mut() {
        *x = rng.gen_range(lo..hi);
    }
}

/// Box–Muller: two independent `N(0,1)` samples from two uniforms.
#[inline]
fn box_muller<R: Rng>(rng: &mut R) -> (f32, f32) {
    // Avoid u1 == 0 (log would be -inf): sample from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    ((r * theta.cos()) as f32, (r * theta.sin()) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(42);
        let mut buf = vec![0.0f32; 200_000];
        fill_normal(&mut buf, 0.0, 1.0, &mut rng);
        let n = buf.len() as f64;
        let mean: f64 = buf.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = buf.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_mean_shift() {
        let mut rng = rng_from_seed(1);
        let mut buf = vec![0.0f32; 50_000];
        fill_normal(&mut buf, 5.0, 0.5, &mut rng);
        let mean: f64 = buf.iter().map(|&x| x as f64).sum::<f64>() / buf.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn odd_length_buffers_are_fully_written() {
        let mut rng = rng_from_seed(9);
        let mut buf = vec![f32::NAN; 7];
        fill_normal(&mut buf, 0.0, 1.0, &mut rng);
        assert!(buf.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = rng_from_seed(2);
        let mut buf = vec![0.0f32; 10_000];
        fill_uniform(&mut buf, 0.0, 1.0, &mut rng);
        let lo = buf.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = buf.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(lo < 0.01 && hi > 0.99, "range [{lo}, {hi}]");
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            assert!(normal_f32(&mut rng).is_finite());
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
