//! Dense `f32` tensors and the parallel compute kernels used throughout the
//! FedHiSyn reproduction.
//!
//! The paper's models (an MLP for MNIST/EMNIST-like tasks and a small CNN
//! for CIFAR-like tasks) only need a handful of primitives: row-major dense
//! storage, GEMM in the three orientations required by backpropagation
//! (`A·B`, `Aᵀ·B`, `A·Bᵀ`), elementwise arithmetic, reductions, and seeded
//! random initialisation. Everything is `f32` — federated averaging is
//! tolerant to single precision and it halves memory traffic relative to
//! `f64`, which matters when 100 simulated devices train concurrently.
//!
//! # Example
//!
//! ```
//! use fedhisyn_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
//! let c = matmul(&a, &b).unwrap();
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[58., 64., 139., 154.]);
//! ```

pub mod dispatch;
mod error;
mod gemm;
#[cfg(target_arch = "x86_64")]
mod gemm_avx2;
pub mod ops;
pub mod quant;
mod rng;
mod scratch;
mod shape;
mod tensor;

pub use dispatch::{active_tier, select_tier, KernelTier};
pub use error::TensorError;
pub use gemm::reference as gemm_reference;
pub use gemm::{
    gemm, gemm_nt, gemm_nt_with_tier, gemm_tn, gemm_tn_with_tier, gemm_with_tier, matmul,
    matmul_nt, matmul_tn, par_gemm, par_gemm_nt, par_gemm_nt_packed, par_gemm_packed, par_gemm_tn,
    PackedPanels,
};
pub use ops::{
    add, add_assign, axpy, content_hash_f32, dot, hadamard, l2_norm, lerp, scale, scale_assign,
    sub, sub_assign,
};
pub use quant::{dequant8, dequantize_slice, finite_min_max, quant8, quant_scale, quantize_slice};
pub use rng::{fill_normal, fill_uniform, normal_f32, rng_from_seed, TensorRng};
pub use scratch::{Scratch, ScratchSlot};
pub use shape::{num_elements, Shape};
pub use tensor::Tensor;

/// Library result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
