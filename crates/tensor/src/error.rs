//! Error type for tensor operations.

use std::fmt;

/// Errors raised by tensor constructors and kernels.
///
/// All shape-sensitive entry points validate their inputs and return
/// `TensorError` instead of panicking, so federated-simulation code can
/// surface configuration mistakes (e.g. a model/dataset dimensionality
/// mismatch) as ordinary `Result`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of data elements does not match the product of the shape.
    LengthMismatch {
        /// Expected element count (product of dims).
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Left-hand shape.
        left: Vec<usize>,
        /// Right-hand shape.
        right: Vec<usize>,
    },
    /// Inner dimensions of a matrix product disagree.
    InnerDimMismatch {
        /// Inner dimension of the left operand.
        left_inner: usize,
        /// Inner dimension of the right operand.
        right_inner: usize,
    },
    /// The operation requires a matrix (rank-2 tensor).
    NotAMatrix {
        /// Rank that was actually supplied.
        rank: usize,
    },
    /// A reshape changed the total number of elements.
    BadReshape {
        /// Element count before reshape.
        from: usize,
        /// Element count requested.
        to: usize,
    },
    /// An empty shape or zero-sized dimension where one is not allowed.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape product {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::InnerDimMismatch {
                left_inner,
                right_inner,
            } => {
                write!(
                    f,
                    "matmul inner dims disagree: {left_inner} vs {right_inner}"
                )
            }
            TensorError::NotAMatrix { rank } => {
                write!(f, "expected a rank-2 tensor, got rank {rank}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "reshape changes element count: {from} -> {to}")
            }
            TensorError::EmptyTensor => write!(f, "operation on empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));

        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        assert!(e.to_string().contains("[2, 3]"));

        let e = TensorError::InnerDimMismatch {
            left_inner: 3,
            right_inner: 4,
        };
        assert!(e.to_string().contains("inner"));

        let e = TensorError::NotAMatrix { rank: 3 };
        assert!(e.to_string().contains("rank 3"));

        let e = TensorError::BadReshape { from: 6, to: 7 };
        assert!(e.to_string().contains("6 -> 7"));

        assert!(TensorError::EmptyTensor.to_string().contains("empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::EmptyTensor);
    }
}
