//! Hand-written AVX2 `6×16` GEMM micro-kernels.
//!
//! Both kernels compute one `rows×cols` corner (`rows ≤ 6`, `cols ≤ 16`)
//! of a C tile from the same packed p-major panels the scalar kernel
//! consumes (`apack[p·6 + r]`, `bpack[p·16 + j]`, zero-padded past the
//! edge). The accumulator block is six rows of two `__m256` registers —
//! 12 accumulator registers plus two B lanes and one A broadcast, fitting
//! the 16-register ymm file.
//!
//! # Bit-identity of the non-FMA kernel
//!
//! [`tile_avx2`] performs, per output element, exactly the operation
//! sequence of the scalar micro-kernel: an optional `β·c` seed (one IEEE
//! `f32` multiply), then one multiply **and one separate add** per
//! reduction step, in the same `p = 0..k` order (vector lanes vectorize
//! across *columns*, never across the reduction), and the same α/β
//! placement per [`Accum`] mode on store. `_mm256_mul_ps` /
//! `_mm256_add_ps` are lane-wise IEEE-754 single ops, so every element is
//! bit-identical to the scalar tier — `tests/kernel_dispatch.rs` proves it
//! property-based across shapes, orientations and α/β cases.
//!
//! [`tile_avx2_fma`] replaces the mul+add pair with `_mm256_fmadd_ps`,
//! which rounds once per fused step instead of twice. That is *more*
//! accurate but not bit-equal, which is why the FMA tier is opt-in
//! (`FEDHISYN_ENABLE_FMA=1`) and documented as target-dependent.
//!
//! # Safety
//!
//! Both functions are `#[target_feature]`-gated and must only be called
//! after the corresponding CPUID check ([`crate::KernelTier::available`]);
//! the dispatcher ([`crate::active_tier`]) guarantees that.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

use crate::gemm::Accum;

/// Rows per AVX2 register tile.
pub(crate) const MR_AVX2: usize = 6;
/// Columns per AVX2 register tile (two `__m256` vectors).
pub(crate) const NR_AVX2: usize = 16;

macro_rules! avx2_tile_kernel {
    ($name:ident, $feat:literal, $fma:literal) => {
        #[allow(clippy::too_many_arguments)] // BLAS-style internals
        #[allow(clippy::needless_range_loop)] // fixed-bound register lattice
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn $name(
            apack: &[f32],
            bpack: &[f32],
            c: &mut [f32],
            row0: usize,
            col0: usize,
            n: usize,
            rows: usize,
            cols: usize,
            k: usize,
            mode: Accum,
        ) {
            debug_assert!((1..=MR_AVX2).contains(&rows) && (1..=NR_AVX2).contains(&cols));
            debug_assert!(apack.len() >= k * MR_AVX2 && bpack.len() >= k * NR_AVX2);
            let full = cols == NR_AVX2;
            let mut tmp = [0.0f32; NR_AVX2];
            let mut acc = [[_mm256_setzero_ps(); 2]; MR_AVX2];

            // Seed `acc = β·c` for the gemm/gemm_tn flavour (β·c is one
            // IEEE multiply per element, exactly like the scalar kernel;
            // lanes past `cols` seed from zero and are never stored).
            if let Accum::SeededByBeta { beta } = mode {
                if beta != 0.0 {
                    let bv = _mm256_set1_ps(beta);
                    for r in 0..rows {
                        let base = (row0 + r) * n + col0;
                        let (lo, hi) = if full {
                            (
                                _mm256_loadu_ps(c.as_ptr().add(base)),
                                _mm256_loadu_ps(c.as_ptr().add(base + 8)),
                            )
                        } else {
                            tmp.fill(0.0);
                            tmp[..cols].copy_from_slice(&c[base..base + cols]);
                            (
                                _mm256_loadu_ps(tmp.as_ptr()),
                                _mm256_loadu_ps(tmp.as_ptr().add(8)),
                            )
                        };
                        acc[r][0] = _mm256_mul_ps(bv, lo);
                        acc[r][1] = _mm256_mul_ps(bv, hi);
                    }
                }
            }

            // The reduction: terms added in `p` order for every element —
            // the determinism contract shared with the scalar tier.
            let ap = apack.as_ptr();
            let bp = bpack.as_ptr();
            for p in 0..k {
                let b0 = _mm256_loadu_ps(bp.add(p * NR_AVX2));
                let b1 = _mm256_loadu_ps(bp.add(p * NR_AVX2 + 8));
                for r in 0..MR_AVX2 {
                    let a = _mm256_set1_ps(*ap.add(p * MR_AVX2 + r));
                    if $fma {
                        acc[r][0] = _mm256_fmadd_ps(a, b0, acc[r][0]);
                        acc[r][1] = _mm256_fmadd_ps(a, b1, acc[r][1]);
                    } else {
                        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(a, b0));
                        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(a, b1));
                    }
                }
            }

            match mode {
                // A panels carried the α pre-scale; store the accumulators.
                Accum::SeededByBeta { .. } => {
                    for r in 0..rows {
                        let base = (row0 + r) * n + col0;
                        if full {
                            _mm256_storeu_ps(c.as_mut_ptr().add(base), acc[r][0]);
                            _mm256_storeu_ps(c.as_mut_ptr().add(base + 8), acc[r][1]);
                        } else {
                            _mm256_storeu_ps(tmp.as_mut_ptr(), acc[r][0]);
                            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc[r][1]);
                            c[base..base + cols].copy_from_slice(&tmp[..cols]);
                        }
                    }
                }
                // The gemm_nt flavour: `c = α·Σ + β·c` applied on store
                // (`α·Σ` alone when β = 0), matching the scalar kernel's
                // operation order exactly.
                Accum::ScaledOnStore { alpha, beta } => {
                    let av = _mm256_set1_ps(alpha);
                    for r in 0..rows {
                        let base = (row0 + r) * n + col0;
                        let lo = _mm256_mul_ps(av, acc[r][0]);
                        let hi = _mm256_mul_ps(av, acc[r][1]);
                        if beta == 0.0 {
                            if full {
                                _mm256_storeu_ps(c.as_mut_ptr().add(base), lo);
                                _mm256_storeu_ps(c.as_mut_ptr().add(base + 8), hi);
                            } else {
                                _mm256_storeu_ps(tmp.as_mut_ptr(), lo);
                                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), hi);
                                c[base..base + cols].copy_from_slice(&tmp[..cols]);
                            }
                        } else if full {
                            let bv = _mm256_set1_ps(beta);
                            let c0 = _mm256_loadu_ps(c.as_ptr().add(base));
                            let c1 = _mm256_loadu_ps(c.as_ptr().add(base + 8));
                            _mm256_storeu_ps(
                                c.as_mut_ptr().add(base),
                                _mm256_add_ps(lo, _mm256_mul_ps(bv, c0)),
                            );
                            _mm256_storeu_ps(
                                c.as_mut_ptr().add(base + 8),
                                _mm256_add_ps(hi, _mm256_mul_ps(bv, c1)),
                            );
                        } else {
                            _mm256_storeu_ps(tmp.as_mut_ptr(), lo);
                            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), hi);
                            let crow = &mut c[base..base + cols];
                            for (j, cv) in crow.iter_mut().enumerate() {
                                *cv = tmp[j] + beta * *cv;
                            }
                        }
                    }
                }
            }
        }
    };
}

avx2_tile_kernel!(tile_avx2, "avx2", false);
avx2_tile_kernel!(tile_avx2_fma, "avx2,fma", true);
