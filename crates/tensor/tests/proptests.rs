//! Property-based tests for tensor algebra invariants.

use fedhisyn_tensor::{add, axpy, dot, gemm, hadamard, l2_norm, lerp, matmul, scale, sub, Tensor};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Bounded range keeps accumulated rounding error proportional to inputs.
    -100.0f32..100.0f32
}

fn tensor1d(len: usize) -> impl Strategy<Value = Tensor> {
    pvec(finite_f32(), len..=len).prop_map(move |v| Tensor::from_vec(vec![len], v).unwrap())
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

fn all_close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| close(x, y, tol))
}

proptest! {
    #[test]
    fn add_commutes(a in tensor1d(16), b in tensor1d(16)) {
        let ab = add(&a, &b).unwrap();
        let ba = add(&b, &a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn add_then_sub_round_trips(a in tensor1d(16), b in tensor1d(16)) {
        let s = add(&a, &b).unwrap();
        let r = sub(&s, &b).unwrap();
        prop_assert!(all_close(r.data(), a.data(), 1e-4));
    }

    #[test]
    fn scale_distributes_over_add(a in tensor1d(8), b in tensor1d(8), alpha in -10.0f32..10.0) {
        let lhs = scale(&add(&a, &b).unwrap(), alpha);
        let rhs = add(&scale(&a, alpha), &scale(&b, alpha)).unwrap();
        prop_assert!(all_close(lhs.data(), rhs.data(), 1e-4));
    }

    #[test]
    fn hadamard_with_ones_is_identity(a in tensor1d(12)) {
        let ones = Tensor::ones(vec![12]);
        let h = hadamard(&a, &ones).unwrap();
        prop_assert_eq!(h.data(), a.data());
    }

    #[test]
    fn dot_is_symmetric(a in pvec(finite_f32(), 10), b in pvec(finite_f32(), 10)) {
        prop_assert!(close(dot(&a, &b), dot(&b, &a), 1e-5));
    }

    #[test]
    fn cauchy_schwarz(a in pvec(finite_f32(), 10), b in pvec(finite_f32(), 10)) {
        let d = dot(&a, &b).abs();
        let bound = l2_norm(&a) * l2_norm(&b);
        prop_assert!(d <= bound * (1.0 + 1e-4) + 1e-3, "{d} > {bound}");
    }

    #[test]
    fn axpy_zero_alpha_is_noop(x in pvec(finite_f32(), 10), y in pvec(finite_f32(), 10)) {
        let mut y2 = y.clone();
        axpy(0.0, &x, &mut y2);
        prop_assert_eq!(y2, y);
    }

    #[test]
    fn lerp_stays_in_segment(x in pvec(finite_f32(), 6), y in pvec(finite_f32(), 6), t in 0.0f32..=1.0) {
        let mut z = y.clone();
        lerp(&mut z, &x, t);
        for ((&zi, &xi), &yi) in z.iter().zip(&x).zip(&y) {
            let lo = xi.min(yi) - 1e-3;
            let hi = xi.max(yi) + 1e-3;
            prop_assert!(zi >= lo && zi <= hi, "{zi} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn matmul_identity_right(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = fedhisyn_tensor::rng_from_seed(seed);
        let a = Tensor::randn(vec![rows, cols], 1.0, &mut rng);
        let mut eye = Tensor::zeros(vec![cols, cols]);
        for i in 0..cols { *eye.at_mut(&[i, i]) = 1.0; }
        let out = matmul(&a, &eye).unwrap();
        prop_assert!(all_close(out.data(), a.data(), 1e-5));
    }

    #[test]
    fn matmul_linear_in_first_arg(seed in 0u64..1000, alpha in -5.0f32..5.0) {
        let mut rng = fedhisyn_tensor::rng_from_seed(seed);
        let a = Tensor::randn(vec![3, 4], 1.0, &mut rng);
        let b = Tensor::randn(vec![4, 2], 1.0, &mut rng);
        let lhs = matmul(&scale(&a, alpha), &b).unwrap();
        let rhs = scale(&matmul(&a, &b).unwrap(), alpha);
        prop_assert!(all_close(lhs.data(), rhs.data(), 1e-3));
    }

    #[test]
    fn gemm_accumulates_with_beta_one(seed in 0u64..1000) {
        let mut rng = fedhisyn_tensor::rng_from_seed(seed);
        let a = Tensor::randn(vec![3, 3], 1.0, &mut rng);
        let b = Tensor::randn(vec![3, 3], 1.0, &mut rng);
        // C = A@B computed once with beta=0, then again accumulated on top:
        // result must be exactly 2 * (A@B).
        let mut c = vec![0.0f32; 9];
        gemm(a.data(), b.data(), &mut c, 3, 3, 3, 1.0, 0.0);
        let once = c.clone();
        gemm(a.data(), b.data(), &mut c, 3, 3, 3, 1.0, 1.0);
        let doubled: Vec<f32> = once.iter().map(|&x| 2.0 * x).collect();
        prop_assert!(all_close(&c, &doubled, 1e-5));
    }

    #[test]
    fn reshape_preserves_data(len in 1usize..64) {
        let v: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let t = Tensor::from_vec(vec![len], v.clone()).unwrap();
        let r = t.reshape(vec![len, 1]).unwrap();
        prop_assert_eq!(r.data(), v.as_slice());
    }
}
