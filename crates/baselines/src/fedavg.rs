//! FedAvg — the paper's interval-collected variant.

use fedhisyn_core::aggregate::Contribution;
use fedhisyn_core::{AggregationRule, ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::ParamVec;
use rayon::prelude::*;

use crate::common::{achievable_steps_at, continuous_local_train_plain, survives_round};

/// FedAvg as evaluated by the paper (§6.1): the server collects weights at
/// regular intervals, so a device with more compute performs more local
/// work within the round ("the local epochs … are the maximum achievable
/// training time in a round"). Aggregation is sample-weighted (Eq. 3).
#[derive(Debug)]
pub struct FedAvg {
    participation: f64,
    global: ParamVec,
}

impl FedAvg {
    /// Build from an experiment config.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        FedAvg {
            participation: cfg.participation,
            global: cfg.initial_params(),
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }
}

impl FlAlgorithm for FedAvg {
    fn name(&self) -> String {
        "FedAvg".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let s = ctx.participants;
        let round = ctx.round;
        let interval = env.slowest_latency_at(s, round);

        env.charge_download(s.len() as f64);

        let global = &self.global;
        // Mid-round casualties never report: their round's work is lost
        // with the device (partial cohort). Static fleets keep everyone.
        let survivors: Vec<usize> = s
            .iter()
            .copied()
            .filter(|&d| survives_round(env, d, round))
            .collect();
        let updated: Vec<(usize, ParamVec)> = survivors
            .par_iter()
            .map(|&d| {
                let steps = achievable_steps_at(env, d, interval, round);
                (
                    d,
                    continuous_local_train_plain(env, d, global, steps, round),
                )
            })
            .collect();

        env.charge_upload(updated.len() as f64);
        if updated.is_empty() {
            return self.global.clone();
        }
        let contributions: Vec<Contribution<'_>> = updated
            .iter()
            .map(|(d, params)| Contribution {
                params,
                samples: env.shard_len(*d),
                class_mean_time: env.latency_at(*d, round),
            })
            .collect();
        self.global = AggregationRule::SampleWeighted.aggregate(&contributions);
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};

    fn cfg(devices: usize) -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(devices)
            .partition(Partition::Iid)
            .local_epochs(1)
            .seed(21)
            .build()
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let cfg = cfg(6);
        let mut env = cfg.build_env();
        let mut algo = FedAvg::new(&cfg);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 3);
        assert!(
            rec.final_accuracy() > init + 0.1,
            "IID FedAvg should learn quickly: {init} -> {}",
            rec.final_accuracy()
        );
    }

    #[test]
    fn uploads_are_one_per_participant_per_round() {
        let cfg = cfg(5);
        let mut env = cfg.build_env();
        let mut algo = FedAvg::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 2);
        assert_eq!(rec.rounds[0].uploads, 5.0);
        assert_eq!(rec.rounds[1].uploads, 10.0);
        assert_eq!(
            rec.rounds[1].peer_transfers, 0.0,
            "FedAvg has no ring traffic"
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg(4);
        let run = || {
            let mut env = c.build_env();
            let mut algo = FedAvg::new(&c);
            run_experiment(&mut algo, &mut env, 2)
        };
        assert_eq!(run(), run());
    }
}
