//! Shared helpers for the baseline algorithms.

use fedhisyn_core::env::FlEnv;
use fedhisyn_core::local::local_train_owned;
use fedhisyn_nn::{GradHook, NoHook, ParamVec};

/// Number of local-training *steps* (of `E` epochs each) device `d` can
/// complete within a round of duration `interval` — the paper's "maximum
/// achievable training time in a round" for FedAvg/FedProx/SCAFFOLD
/// (§6.1). At least one step, like Alg. 1's budget loop.
pub fn achievable_steps(env: &FlEnv, device: usize, interval: f64) -> usize {
    ((interval / env.latency(device)).ceil() as usize).max(1)
}

/// [`achievable_steps`] at the device's *effective* capacity for `round`
/// (identical on a static fleet).
pub fn achievable_steps_at(env: &FlEnv, device: usize, interval: f64, round: usize) -> usize {
    ((interval / env.latency_at(device, round)).ceil() as usize).max(1)
}

/// Whether device `d` survives `round` without a mid-round crash. A
/// casualty trains but never uploads: server-collected protocols drop its
/// contribution (the round's work is lost with the device). Always true
/// on a static fleet.
pub fn survives_round(env: &FlEnv, device: usize, round: usize) -> bool {
    env.fleet.fail_frac(device, round).is_none()
}

/// Run `steps` consecutive local-training steps from `start`, optionally
/// with a gradient hook. Returns the final parameters.
///
/// Clones `start` once; every step after that trains through the
/// execution engine's cached model and moves the same parameter buffer
/// along.
pub fn continuous_local_train(
    env: &FlEnv,
    device: usize,
    start: &ParamVec,
    steps: usize,
    round: usize,
    hook: &dyn GradHook,
) -> ParamVec {
    let mut current = start.clone();
    for s in 0..steps {
        current = local_train_owned(
            env,
            device,
            current,
            env.local_epochs,
            hook,
            round,
            s as u64,
        );
    }
    current
}

/// [`continuous_local_train`] without a gradient hook.
pub fn continuous_local_train_plain(
    env: &FlEnv,
    device: usize,
    start: &ParamVec,
    steps: usize,
    round: usize,
) -> ParamVec {
    continuous_local_train(env, device, start, steps, round, &NoHook)
}

/// Mini-batch SGD steps one local-training step performs on `device`
/// (epochs × batches per epoch) — SCAFFOLD's `K` in its control-variate
/// update.
pub fn minibatch_steps(env: &FlEnv, device: usize) -> usize {
    let n = env.shard_len(device);
    let batches = n.div_ceil(env.batch_size).max(1);
    batches * env.local_epochs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::ExperimentConfig;
    use fedhisyn_data::{DatasetProfile, Scale};
    use fedhisyn_tensor::rng_from_seed;

    fn env() -> FlEnv {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(4)
            .local_epochs(1)
            .seed(2)
            .build()
            .build_env()
    }

    #[test]
    fn achievable_steps_scale_with_interval() {
        let env = env();
        let t0 = env.latency(0);
        assert_eq!(achievable_steps(&env, 0, t0), 1);
        assert_eq!(achievable_steps(&env, 0, 3.0 * t0), 3);
        assert_eq!(achievable_steps(&env, 0, 0.1 * t0), 1, "minimum one step");
    }

    #[test]
    fn continuous_training_changes_params_each_step() {
        let env = env();
        let init = env.spec.build(&mut rng_from_seed(0)).params();
        let one = continuous_local_train_plain(&env, 0, &init, 1, 0);
        let two = continuous_local_train_plain(&env, 0, &init, 2, 0);
        assert_ne!(init, one);
        assert_ne!(one, two, "a second step must continue training");
    }

    #[test]
    fn minibatch_steps_counts_batches() {
        let env = env();
        let n = env.shard_len(0);
        let expect = n.div_ceil(env.batch_size).max(1) * env.local_epochs;
        assert_eq!(minibatch_steps(&env, 0), expect);
    }
}
