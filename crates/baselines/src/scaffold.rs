//! SCAFFOLD — stochastic controlled averaging with control variates.

use fedhisyn_core::aggregate::Contribution;
use fedhisyn_core::{AggregationRule, ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::{GradHook, ParamVec};
use rayon::prelude::*;

use crate::common::{achievable_steps_at, continuous_local_train, minibatch_steps, survives_round};

/// SCAFFOLD (Karimireddy et al., ICML 2020): the server maintains a global
/// control variate `c` and each device a local one `c_i`; local gradients
/// are corrected by `c − c_i`, cancelling client drift on Non-IID data.
/// After local training, devices update their variate with option II:
/// `c_i⁺ = c_i − c + (x − y_i) / (K·η)`.
///
/// Every exchange carries the model *and* a control variate, so the paper
/// (§6.1) charges SCAFFOLD **2 model-equivalents** per transfer; the meter
/// reflects that.
#[derive(Debug)]
pub struct Scaffold {
    participation: f64,
    global: ParamVec,
    /// Server control variate `c`.
    c_global: ParamVec,
    /// Per-device control variates `c_i`.
    c_local: Vec<ParamVec>,
    lr: f32,
}

impl Scaffold {
    /// Build from an experiment config.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        let global = cfg.initial_params();
        let n = global.len();
        Scaffold {
            participation: cfg.participation,
            global,
            c_global: ParamVec::zeros(n),
            c_local: vec![ParamVec::zeros(n); cfg.n_devices],
            lr: cfg.lr,
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }

    /// Current server control variate.
    pub fn control_variate(&self) -> &ParamVec {
        &self.c_global
    }
}

/// SCAFFOLD's gradient correction: `g ← g + c − c_i`.
///
/// Operates on the in-place gradient slices the engine walks; `offset`
/// indexes the matching coordinates of both flat control variates.
pub struct ScaffoldHook<'a> {
    /// Server control variate.
    pub c_global: &'a ParamVec,
    /// Device control variate.
    pub c_local: &'a ParamVec,
}

impl GradHook for ScaffoldHook<'_> {
    fn adjust(&self, offset: usize, _params: &[f32], grads: &mut [f32]) {
        assert!(
            offset + grads.len() <= self.c_global.len(),
            "control variate size mismatch"
        );
        let span = offset..offset + grads.len();
        let c_global = &self.c_global.as_slice()[span.clone()];
        let c_local = &self.c_local.as_slice()[span];
        for ((g, &cg), &cl) in grads.iter_mut().zip(c_global).zip(c_local) {
            *g += cg - cl;
        }
    }
}

impl FlAlgorithm for Scaffold {
    fn name(&self) -> String {
        "SCAFFOLD".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let s = ctx.participants;
        let n_params = env.param_count();
        let round = ctx.round;
        let interval = env.slowest_latency_at(s, round);

        // Download = model + server variate: 2 model-equivalents each.
        env.charge_download(2.0 * s.len() as f64);

        let global = &self.global;
        let c_global = &self.c_global;
        let c_local = &self.c_local;
        // The per-slice hook can only bounds-check, so pin the variates to
        // the model size once per round (the old whole-vector guard).
        assert_eq!(c_global.len(), n_params, "control variate size mismatch");
        let lr = self.lr;
        // Mid-round casualties never report: neither their model nor
        // their variate delta reaches the server, and their local variate
        // stays as-is (partial cohort).
        let survivors: Vec<usize> = s
            .iter()
            .copied()
            .filter(|&d| survives_round(env, d, round))
            .collect();
        // (device, trained params, new c_i)
        let updated: Vec<(usize, ParamVec, ParamVec)> = survivors
            .par_iter()
            .map(|&d| {
                let steps = achievable_steps_at(env, d, interval, round);
                let hook = ScaffoldHook {
                    c_global,
                    c_local: &c_local[d],
                };
                let trained = continuous_local_train(env, d, global, steps, round, &hook);
                // Option II variate update: c_i+ = c_i − c + (x − y_i)/(K·η)
                let k = (minibatch_steps(env, d) * steps).max(1);
                let mut c_new = c_local[d].clone();
                c_new.sub_assign(c_global);
                let scale = 1.0 / (k as f32 * lr);
                for ((cn, &x), &y) in c_new
                    .as_mut_slice()
                    .iter_mut()
                    .zip(global.as_slice())
                    .zip(trained.as_slice())
                {
                    *cn += scale * (x - y);
                }
                (d, trained, c_new)
            })
            .collect();

        // Upload = model + variate delta: 2 model-equivalents each (§6.1).
        env.charge_upload(2.0 * updated.len() as f64);
        if updated.is_empty() {
            return self.global.clone();
        }

        // Server: aggregate models uniformly over participants and fold
        // variate deltas in at 1/N (N = fleet size), per the algorithm.
        let contributions: Vec<Contribution<'_>> = updated
            .iter()
            .map(|(d, params, _)| Contribution {
                params,
                samples: env.shard_len(*d),
                class_mean_time: env.latency_at(*d, round),
            })
            .collect();
        self.global = AggregationRule::Uniform.aggregate(&contributions);

        let n_fleet = env.n_devices() as f32;
        for (d, _, c_new) in updated {
            let mut delta = c_new.clone();
            delta.sub_assign(&self.c_local[d]);
            self.c_global.axpy(1.0 / n_fleet, &delta);
            self.c_local[d] = c_new;
        }
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(5)
            .partition(Partition::Dirichlet { beta: 0.3 })
            .local_epochs(1)
            .seed(61)
            .build()
    }

    #[test]
    fn hook_applies_variate_difference() {
        let cg = ParamVec::from_vec(vec![1.0, 2.0]);
        let cl = ParamVec::from_vec(vec![0.5, 1.0]);
        let mut grads = [0.0, 0.0];
        ScaffoldHook {
            c_global: &cg,
            c_local: &cl,
        }
        .adjust(0, &[0.0, 0.0], &mut grads);
        assert_eq!(grads, [0.5, 1.0]);
    }

    #[test]
    fn hook_respects_slice_offsets() {
        let cg = ParamVec::from_vec(vec![1.0, 2.0, 3.0]);
        let cl = ParamVec::from_vec(vec![0.0, 0.0, 1.0]);
        let mut grads = [0.0];
        ScaffoldHook {
            c_global: &cg,
            c_local: &cl,
        }
        .adjust(2, &[0.0], &mut grads);
        assert_eq!(grads, [2.0], "c[2] - c_i[2] = 3 - 1");
    }

    #[test]
    fn uploads_cost_double() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = Scaffold::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 1);
        assert_eq!(
            rec.rounds[0].uploads, 10.0,
            "5 devices x 2 model-equivalents"
        );
        assert_eq!(rec.rounds[0].downloads, 10.0);
    }

    #[test]
    fn learns_on_noniid_data() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = Scaffold::new(&cfg);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 3);
        assert!(
            rec.final_accuracy() > init,
            "{init} -> {}",
            rec.final_accuracy()
        );
        assert!(algo.global().is_finite());
        assert!(algo.control_variate().is_finite());
    }

    #[test]
    fn variates_start_at_zero_and_move() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = Scaffold::new(&cfg);
        assert_eq!(algo.control_variate().norm(), 0.0);
        let _ = run_experiment(&mut algo, &mut env, 2);
        assert!(
            algo.control_variate().norm() > 0.0,
            "server variate should update"
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        let run = || {
            let mut env = c.build_env();
            let mut algo = Scaffold::new(&c);
            run_experiment(&mut algo, &mut env, 2)
        };
        assert_eq!(run(), run());
    }
}
