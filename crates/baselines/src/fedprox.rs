//! FedProx — FedAvg with a proximal term against client drift.

use fedhisyn_core::aggregate::Contribution;
use fedhisyn_core::{AggregationRule, ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::{GradHook, ParamVec};
use rayon::prelude::*;

use crate::common::{achievable_steps_at, continuous_local_train, survives_round};

/// FedProx (Li et al., MLSys 2020; §6.1 of the FedHiSyn paper): local
/// objectives gain a proximal term `(μ/2)·‖w − w_G‖²`, whose gradient
/// contribution `μ·(w − w_G)` pulls each device back toward the round's
/// global model, tolerating variable amounts of local work across
/// heterogeneous devices.
#[derive(Debug)]
pub struct FedProx {
    participation: f64,
    /// Proximal coefficient `μ`.
    pub mu: f32,
    global: ParamVec,
}

impl FedProx {
    /// Build from an experiment config with the default `μ = 0.01`.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        Self::with_mu(cfg, 0.01)
    }

    /// Build with an explicit proximal coefficient.
    pub fn with_mu(cfg: &ExperimentConfig, mu: f32) -> Self {
        assert!(mu >= 0.0, "mu must be non-negative");
        FedProx {
            participation: cfg.participation,
            mu,
            global: cfg.initial_params(),
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }
}

/// The proximal gradient correction: `g ← g + μ·(w − w_G)`.
///
/// Operates on the in-place parameter/gradient slices the engine walks:
/// `offset` locates the slice inside the flat layout, which is where the
/// matching anchor coordinates live.
pub struct ProxHook<'a> {
    /// Proximal coefficient `μ`.
    pub mu: f32,
    /// The round's global model `w_G`.
    pub anchor: &'a ParamVec,
}

impl GradHook for ProxHook<'_> {
    fn adjust(&self, offset: usize, params: &[f32], grads: &mut [f32]) {
        assert!(
            offset + grads.len() <= self.anchor.len(),
            "anchor size mismatch"
        );
        let anchor = &self.anchor.as_slice()[offset..offset + grads.len()];
        for ((g, &w), &a) in grads.iter_mut().zip(params).zip(anchor) {
            *g += self.mu * (w - a);
        }
    }
}

impl FlAlgorithm for FedProx {
    fn name(&self) -> String {
        "FedProx".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let s = ctx.participants;
        let n_params = env.param_count();
        let round = ctx.round;
        let interval = env.slowest_latency_at(s, round);

        env.charge_download(s.len() as f64);
        let global = &self.global;
        // The per-slice hook can only bounds-check, so pin the anchor to
        // the model size once per round (the old whole-vector guard).
        assert_eq!(global.len(), n_params, "proximal anchor size mismatch");
        let mu = self.mu;
        // Mid-round casualties never report (partial cohort).
        let survivors: Vec<usize> = s
            .iter()
            .copied()
            .filter(|&d| survives_round(env, d, round))
            .collect();
        let updated: Vec<(usize, ParamVec)> = survivors
            .par_iter()
            .map(|&d| {
                let steps = achievable_steps_at(env, d, interval, round);
                let hook = ProxHook { mu, anchor: global };
                (
                    d,
                    continuous_local_train(env, d, global, steps, round, &hook),
                )
            })
            .collect();

        env.charge_upload(updated.len() as f64);
        if updated.is_empty() {
            return self.global.clone();
        }
        let contributions: Vec<Contribution<'_>> = updated
            .iter()
            .map(|(d, params)| Contribution {
                params,
                samples: env.shard_len(*d),
                class_mean_time: env.latency_at(*d, round),
            })
            .collect();
        self.global = AggregationRule::SampleWeighted.aggregate(&contributions);
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(5)
            .partition(Partition::Dirichlet { beta: 0.3 })
            .local_epochs(1)
            .seed(51)
            .build()
    }

    #[test]
    fn prox_hook_pulls_toward_anchor() {
        let anchor = ParamVec::from_vec(vec![0.0, 0.0]);
        let params = [2.0, -4.0];
        let mut grads = [0.0, 0.0];
        let hook = ProxHook {
            mu: 0.5,
            anchor: &anchor,
        };
        hook.adjust(0, &params, &mut grads);
        assert_eq!(grads, [1.0, -2.0]);
    }

    #[test]
    fn prox_hook_respects_slice_offsets() {
        // Adjusting the tail slice must read the anchor's tail, exactly as
        // a whole-vector adjustment would.
        let anchor = ParamVec::from_vec(vec![10.0, 20.0, 30.0]);
        let params = [31.0];
        let mut grads = [0.0];
        ProxHook {
            mu: 1.0,
            anchor: &anchor,
        }
        .adjust(2, &params, &mut grads);
        assert_eq!(grads, [1.0], "w - anchor[2] = 31 - 30");
    }

    #[test]
    fn zero_mu_equals_fedavg_gradients() {
        let anchor = ParamVec::from_vec(vec![1.0]);
        let params = [5.0];
        let mut grads = [3.0];
        ProxHook {
            mu: 0.0,
            anchor: &anchor,
        }
        .adjust(0, &params, &mut grads);
        assert_eq!(grads, [3.0]);
    }

    #[test]
    fn learns_on_noniid_data() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = FedProx::new(&cfg);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 3);
        assert!(
            rec.final_accuracy() > init,
            "{init} -> {}",
            rec.final_accuracy()
        );
    }

    #[test]
    fn uploads_match_sync_protocols() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = FedProx::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 2);
        assert_eq!(rec.rounds[1].uploads, 10.0);
    }

    #[test]
    fn large_mu_keeps_model_closer_to_global() {
        let cfg = cfg();
        let env = cfg.build_env();
        let global = cfg.initial_params();
        let free = continuous_local_train(
            &env,
            0,
            &global,
            1,
            0,
            &ProxHook {
                mu: 0.0,
                anchor: &global,
            },
        );
        let anchored = continuous_local_train(
            &env,
            0,
            &global,
            1,
            0,
            &ProxHook {
                mu: 1.0,
                anchor: &global,
            },
        );
        let d_free = free.distance(&global);
        let d_anchored = anchored.distance(&global);
        assert!(
            d_anchored < d_free,
            "mu=1 should stay closer to the anchor: {d_anchored} vs {d_free}"
        );
    }
}
