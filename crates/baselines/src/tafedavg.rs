//! TAFedAvg — fully asynchronous FedAvg.

use fedhisyn_core::local::local_train_plain_owned;
use fedhisyn_core::{ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::ParamVec;
use fedhisyn_simnet::{EventQueue, SimTime};

/// TAFedAvg (§6.1): each device uploads as soon as it finishes local
/// training; the server immediately mixes the arrival into the global
/// model and hands the fresh global back. Within one reporting round
/// (interval `R`), a fast device may complete many upload/download cycles
/// — which is exactly why Table 1 charges TAFedAvg several transfers per
/// round and why its accuracy degrades at low participation (stale, fast-
/// device-biased updates).
///
/// The server mix is `W_G ← (1 − α)·W_G + α·W_i` with a staleness
/// discount `α = α₀ / (1 + staleness)`, where staleness counts server
/// updates since the device last pulled — FedAsync's polynomial rule with
/// exponent 1.
#[derive(Debug)]
pub struct TAFedAvg {
    participation: f64,
    /// Base mixing rate `α₀`.
    pub alpha: f32,
    global: ParamVec,
}

impl TAFedAvg {
    /// Build from an experiment config with the default `α₀ = 0.4`.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        TAFedAvg {
            participation: cfg.participation,
            alpha: 0.4,
            global: cfg.initial_params(),
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }
}

#[derive(Debug)]
struct Completion {
    device: usize,
    /// Server version the device trained against (for staleness).
    based_on: u64,
    /// Per-device step counter (for RNG salting).
    step: u64,
}

impl FlAlgorithm for TAFedAvg {
    fn name(&self) -> String {
        "TAFedAvg".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let s = ctx.participants;
        let round = ctx.round;
        let interval = env.slowest_latency_at(s, round);

        // Every participant pulls the global once at round start.
        env.charge_download(s.len() as f64);

        // Device-local state: the model each device is currently training.
        let mut device_model: Vec<ParamVec> = vec![self.global.clone(); s.len()];
        let mut server_version: u64 = 0;
        // A device that crashes mid-round stops reporting at its failure
        // time: completions past the cutoff never reach the server.
        let cutoff: Vec<Option<f64>> = s
            .iter()
            .map(|&d| env.fail_time(d, round, interval))
            .collect();

        let mut queue: EventQueue<Completion> = EventQueue::new();
        for (slot, &d) in s.iter().enumerate() {
            queue.push(
                SimTime::new(env.latency_at(d, round)),
                Completion {
                    device: slot,
                    based_on: 0,
                    step: 0,
                },
            );
        }

        // Process completions until the interval closes. Devices whose
        // completion lands past the interval do not upload this round
        // (they will restart from the fresh global next round, matching
        // interval-reporting async systems).
        let deadline = SimTime::new(interval * 1.000_001); // include t == R
        while let Some((now, ev)) = queue.pop_before(deadline) {
            let slot = ev.device;
            let d = s[slot];
            if let Some(t) = cutoff[slot] {
                if now.seconds() > t {
                    // The device died mid-step: this completion (and the
                    // device's remaining round) never happens.
                    continue;
                }
            }
            // The device finishes training the model it started earlier.
            // The slot's buffer is moved into the trainer (it is dead
            // until the device pulls a fresh global). The salt only needs
            // to be unique per (device, step); the device id and round are
            // mixed inside local_train.
            let trained = local_train_plain_owned(
                env,
                d,
                std::mem::take(&mut device_model[slot]),
                env.local_epochs,
                round,
                ev.step,
            );
            // Upload + server mix with staleness discount.
            env.charge_upload(1.0);
            let staleness = (server_version - ev.based_on) as f32;
            let alpha = self.alpha / (1.0 + staleness);
            self.global.lerp(&trained, alpha);
            server_version += 1;
            // Pull the fresh global and go again if time remains.
            let next_done = now + env.latency_at(d, round);
            if next_done <= deadline {
                env.charge_download(1.0);
                device_model[slot] = self.global.clone();
                queue.push(
                    next_done,
                    Completion {
                        device: slot,
                        based_on: server_version,
                        step: ev.step + 1,
                    },
                );
            }
        }
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};
    use fedhisyn_simnet::HeterogeneityModel;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(5)
            .partition(Partition::Iid)
            .heterogeneity(HeterogeneityModel::Uniform { h: 5.0 })
            .local_epochs(1)
            .seed(41)
            .build()
    }

    #[test]
    fn learns_on_iid_data() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = TAFedAvg::new(&cfg);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 4);
        assert!(
            rec.final_accuracy() > init + 0.08,
            "should improve over init: {init} -> {}",
            rec.final_accuracy()
        );
    }

    #[test]
    fn uploads_exceed_one_per_device_under_heterogeneity() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = TAFedAvg::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 1);
        // Fast devices complete several cycles within the slowest device's
        // interval, so uploads > participants.
        assert!(
            rec.rounds[0].uploads > rec.rounds[0].participants as f64,
            "async uploads {} should exceed participants {}",
            rec.rounds[0].uploads,
            rec.rounds[0].participants
        );
    }

    #[test]
    fn staleness_discount_shrinks_alpha() {
        // Directly check the mixing-rate formula.
        let alpha0 = 0.4f32;
        let fresh = alpha0 / (1.0 + 0.0);
        let stale = alpha0 / (1.0 + 9.0);
        assert_eq!(fresh, 0.4);
        assert!((stale - 0.04).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        let run = || {
            let mut env = c.build_env();
            let mut algo = TAFedAvg::new(&c);
            run_experiment(&mut algo, &mut env, 2)
        };
        assert_eq!(run(), run());
    }
}
