//! TFedAvg — strictly synchronous FedAvg (fixed local epochs).

use fedhisyn_core::aggregate::Contribution;
use fedhisyn_core::{AggregationRule, ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::ParamVec;
use rayon::prelude::*;

use crate::common::{continuous_local_train_plain, survives_round};

/// TFedAvg (§6.1): every participant trains exactly `E` local epochs and
/// then *waits* for the slowest device before uploading — the classic
/// straggler-bound synchronous FL. Fast devices idle for most of the
/// round, which is precisely the waste FedHiSyn's rings reclaim.
#[derive(Debug)]
pub struct TFedAvg {
    participation: f64,
    global: ParamVec,
}

impl TFedAvg {
    /// Build from an experiment config.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        TFedAvg {
            participation: cfg.participation,
            global: cfg.initial_params(),
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }
}

impl FlAlgorithm for TFedAvg {
    fn name(&self) -> String {
        "TFedAvg".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let s = ctx.participants;
        let round = ctx.round;

        env.charge_download(s.len() as f64);
        let global = &self.global;
        // Mid-round casualties never report (partial cohort).
        let survivors: Vec<usize> = s
            .iter()
            .copied()
            .filter(|&d| survives_round(env, d, round))
            .collect();
        // Exactly one local step each, regardless of speed.
        let updated: Vec<(usize, ParamVec)> = survivors
            .par_iter()
            .map(|&d| (d, continuous_local_train_plain(env, d, global, 1, round)))
            .collect();

        env.charge_upload(updated.len() as f64);
        if updated.is_empty() {
            return self.global.clone();
        }
        let contributions: Vec<Contribution<'_>> = updated
            .iter()
            .map(|(d, params)| Contribution {
                params,
                samples: env.shard_len(*d),
                class_mean_time: env.latency_at(*d, round),
            })
            .collect();
        self.global = AggregationRule::SampleWeighted.aggregate(&contributions);
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(5)
            .partition(Partition::Iid)
            .local_epochs(1)
            .seed(31)
            .build()
    }

    #[test]
    fn learns_on_iid_data() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = TFedAvg::new(&cfg);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 4);
        assert!(
            rec.final_accuracy() > init + 0.08,
            "should improve over init: {init} -> {}",
            rec.final_accuracy()
        );
    }

    #[test]
    fn same_uploads_as_fedavg_per_round() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = TFedAvg::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 2);
        assert_eq!(rec.rounds[1].uploads, 10.0);
    }

    #[test]
    fn fixed_epochs_do_less_work_than_fedavg() {
        // Under heterogeneity, TFedAvg's global does strictly less local
        // work than FedAvg's "max achievable" — verify via accuracy on a
        // hard split (TFedAvg should not be better after round 1 on
        // average; weak smoke proxy: both runs complete and stay finite).
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = TFedAvg::new(&cfg);
        let rec = run_experiment(&mut algo, &mut env, 1);
        assert!(algo.global().is_finite());
        assert_eq!(rec.rounds.len(), 1);
    }
}
