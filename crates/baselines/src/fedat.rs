//! FedAT — tiered semi-asynchronous federated learning.

use fedhisyn_cluster::quantile_bins;
use fedhisyn_core::aggregate::Contribution;
use fedhisyn_core::{AggregationRule, ExperimentConfig, FlAlgorithm, RoundContext};
use fedhisyn_nn::ParamVec;
use rayon::prelude::*;

use crate::common::{continuous_local_train_plain, survives_round};

/// FedAT (Chai et al., SC 2021; §6.1 of the FedHiSyn paper): devices are
/// grouped into latency tiers; *within* a tier updates are synchronous
/// (classic FedAvg among tier members), *across* tiers updates are
/// asynchronous — a fast tier completes many internal rounds while the
/// slow tier completes one. The server keeps one model per tier and forms
/// the global model as a cross-tier weighted average that gives **higher
/// weight to tiers that updated less often**, countering the fast tiers'
/// data bias.
///
/// Within one reporting round (interval `R` = slowest participant), tier
/// `m` with internal period `p_m` (its slowest member) performs
/// `ceil(R / p_m)` internal rounds, uploading its members' models each
/// time — which is why Table 1 charges FedAT several transfers per round.
#[derive(Debug)]
pub struct FedAT {
    participation: f64,
    /// Number of latency tiers `M`.
    pub tiers: usize,
    global: ParamVec,
    /// Cumulative update counts per tier (persist across rounds for the
    /// inverse-frequency weights).
    update_counts: Vec<u64>,
}

impl FedAT {
    /// Build from an experiment config with `tiers` latency tiers.
    pub fn new(cfg: &ExperimentConfig, tiers: usize) -> Self {
        assert!(tiers > 0, "need at least one tier");
        FedAT {
            participation: cfg.participation,
            tiers,
            global: cfg.initial_params(),
            update_counts: vec![0; tiers],
        }
    }

    /// Current global model.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }

    /// Inverse-frequency tier weights from cumulative update counts:
    /// `w_m ∝ (T − n_m + 1)` where `T = Σ n_m` (FedAT's heuristic shape:
    /// monotonically decreasing in the tier's own update count, strictly
    /// positive).
    fn tier_weights(counts: &[u64]) -> Vec<f64> {
        let total: u64 = counts.iter().sum();
        counts
            .iter()
            .map(|&n| (total.saturating_sub(n) + 1) as f64)
            .collect()
    }
}

impl FlAlgorithm for FedAT {
    fn name(&self) -> String {
        "FedAT".to_string()
    }

    fn participation(&self) -> f64 {
        self.participation
    }

    fn round(&mut self, ctx: &mut RoundContext<'_>) -> ParamVec {
        let env = ctx.env;
        let round = ctx.round;
        env.charge_download(ctx.participants.len() as f64);

        // The reporting interval is set by the slowest *online*
        // participant — the same clock `round_duration` records and the
        // other baselines train against — before any casualty is dropped.
        let interval = env.slowest_latency_at(ctx.participants, round);

        // Mid-round casualties are approximated as absent for the whole
        // reporting round: FedAT's internal tier rounds re-aggregate
        // continuously, so a device lost partway poisons every later
        // internal round — dropping it up front is the honest cut.
        let s: Vec<usize> = ctx
            .participants
            .iter()
            .copied()
            .filter(|&d| survives_round(env, d, round))
            .collect();
        if s.is_empty() {
            return self.global.clone();
        }
        let s = &s[..];

        // Tier the participants by latency (equal-population bins, as in
        // FedAT's profiling-based tiering) observed *this round*.
        let latencies: Vec<f64> = s.iter().map(|&d| env.latency_at(d, round)).collect();
        let m = self.tiers.min(s.len());
        let bins = quantile_bins(&latencies, m);
        if self.update_counts.len() < m {
            self.update_counts.resize(m, 0);
        }

        // Each tier runs its internal synchronous rounds independently.
        let global = &self.global;
        let tier_results: Vec<(ParamVec, u64, f64)> = bins
            .par_iter()
            .map(|bin| {
                let members: Vec<usize> = bin.iter().map(|&i| s[i]).collect();
                let period = members
                    .iter()
                    .map(|&d| env.latency_at(d, round))
                    .fold(0.0f64, f64::max);
                let internal_rounds = ((interval / period).ceil() as u64).max(1);
                let mut tier_model = global.clone();
                for ir in 0..internal_rounds {
                    let updated: Vec<(usize, ParamVec)> = members
                        .iter()
                        .map(|&d| {
                            let salt = ir * 1024 + 1;
                            let trained = continuous_local_train_plain(
                                env,
                                d,
                                &tier_model,
                                1,
                                round.wrapping_mul(31).wrapping_add(salt as usize),
                            );
                            (d, trained)
                        })
                        .collect();
                    let contributions: Vec<Contribution<'_>> = updated
                        .iter()
                        .map(|(d, params)| Contribution {
                            params,
                            samples: env.shard_len(*d),
                            class_mean_time: env.latency_at(*d, round),
                        })
                        .collect();
                    tier_model = AggregationRule::SampleWeighted.aggregate(&contributions);
                    // Every internal round uploads each member's model.
                    env.charge_upload(members.len() as f64);
                }
                let mean_lat = members
                    .iter()
                    .map(|&d| env.latency_at(d, round))
                    .sum::<f64>()
                    / members.len() as f64;
                (tier_model, internal_rounds, mean_lat)
            })
            .collect();

        // Cross-tier asynchronous merge with inverse-frequency weights.
        for (t, (_, updates, _)) in tier_results.iter().enumerate() {
            self.update_counts[t] += updates;
        }
        let weights = Self::tier_weights(&self.update_counts[..tier_results.len()]);
        let contributions: Vec<(f32, &ParamVec)> = tier_results
            .iter()
            .zip(&weights)
            .map(|((model, _, _), &w)| (w as f32, model))
            .collect();
        self.global = ParamVec::weighted_mean(contributions);
        self.global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhisyn_core::{run_experiment, ExperimentConfig};
    use fedhisyn_data::{DatasetProfile, Partition, Scale};
    use fedhisyn_simnet::HeterogeneityModel;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder(DatasetProfile::MnistLike)
            .scale(Scale::Smoke)
            .devices(6)
            .partition(Partition::Iid)
            .heterogeneity(HeterogeneityModel::Uniform { h: 8.0 })
            .local_epochs(1)
            .seed(71)
            .build()
    }

    #[test]
    fn tier_weights_penalize_frequent_updaters() {
        let w = FedAT::tier_weights(&[10, 1]);
        assert!(w[1] > w[0], "less-updated tier must weigh more: {w:?}");
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uploads_exceed_sync_protocols_under_heterogeneity() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = FedAT::new(&cfg, 3);
        let rec = run_experiment(&mut algo, &mut env, 1);
        assert!(
            rec.rounds[0].uploads > rec.rounds[0].participants as f64,
            "fast tiers upload multiple times: {} vs {}",
            rec.rounds[0].uploads,
            rec.rounds[0].participants
        );
    }

    #[test]
    fn learns_on_iid_data() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = FedAT::new(&cfg, 2);
        let init = fedhisyn_core::local::evaluate_on_test(&env, algo.global());
        let rec = run_experiment(&mut algo, &mut env, 4);
        assert!(
            rec.final_accuracy() > init + 0.08,
            "should improve over init: {init} -> {}",
            rec.final_accuracy()
        );
    }

    #[test]
    fn more_tiers_than_participants_is_clamped() {
        let cfg = cfg();
        let mut env = cfg.build_env();
        let mut algo = FedAT::new(&cfg, 100);
        let rec = run_experiment(&mut algo, &mut env, 1);
        assert_eq!(rec.rounds.len(), 1);
        assert!(algo.global().is_finite());
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        let run = || {
            let mut env = c.build_env();
            let mut algo = FedAT::new(&c, 2);
            run_experiment(&mut algo, &mut env, 2)
        };
        assert_eq!(run(), run());
    }
}
