//! Baseline federated-learning algorithms from the paper's evaluation.
//!
//! All six comparators of Table 1, built on the same [`fedhisyn_core`]
//! environment, runner and transmission meter so comparisons are
//! apples-to-apples:
//!
//! | Algorithm | Kind | Notes |
//! |---|---|---|
//! | [`FedAvg`] | interval-collected | devices use the maximum achievable local work per round (§6.1) |
//! | [`TFedAvg`] | strictly synchronous | every device trains exactly `E` epochs, then idles for the straggler |
//! | [`TAFedAvg`] | fully asynchronous | devices upload on completion; the server mixes immediately |
//! | [`FedProx`] | synchronous | proximal term `μ‖w − w_G‖²` against client drift |
//! | [`FedAT`] | semi-asynchronous tiers | synchronous inside a tier, asynchronous across tiers |
//! | [`Scaffold`] | synchronous | control variates; every exchange costs 2 model-equivalents |

pub mod common;
pub mod fedat;
pub mod fedavg;
pub mod fedprox;
pub mod scaffold;
pub mod tafedavg;
pub mod tfedavg;

pub use fedat::FedAT;
pub use fedavg::FedAvg;
pub use fedprox::FedProx;
pub use scaffold::Scaffold;
pub use tafedavg::TAFedAvg;
pub use tfedavg::TFedAvg;
