//! The dense reference realisation — the executable specification the
//! lazy sharded [`FleetModel`](crate::FleetModel) is proven against.
//!
//! This is the pre-lazy implementation kept verbatim: every round
//! materialises full `online`/`multiplier`/`fail_frac`/`cap_state`
//! vectors for **all** devices behind one `RwLock`, advancing the whole
//! fleet together. It is O(fleet) per round and exists only so the
//! workspace's equivalence proptests can assert, value for value, that
//! lazy per-device realisation reproduces the dense trace bit-for-bit
//! under any query order. Production code should always use
//! [`FleetModel`](crate::FleetModel).

use std::sync::RwLock;

use fedhisyn_simnet::DeviceProfile;

use crate::dynamics::{AvailabilityModel, CapacityModel, FleetDynamics};
use crate::model::{
    mix, pick, unit, ROLE_AVAIL, ROLE_CAPACITY, ROLE_FAIL, ROLE_FAIL_TIME, ROLE_MODULATOR,
    ROLE_SPIKE,
};

/// One densely-realised round.
#[derive(Debug, Clone, PartialEq)]
struct DenseRound {
    online: Vec<bool>,
    multiplier: Vec<f64>,
    fail_frac: Vec<Option<f64>>,
    cap_state: Vec<usize>,
    modulator_state: usize,
}

/// The dense, whole-fleet-per-round reference realisation.
#[derive(Debug)]
pub struct ReferenceFleet {
    n: usize,
    dynamics: FleetDynamics,
    seed: u64,
    is_static: bool,
    trace: RwLock<Vec<DenseRound>>,
}

impl ReferenceFleet {
    /// Build from the fleet's sampled base profiles.
    pub fn new(profiles: &[DeviceProfile], dynamics: FleetDynamics, seed: u64) -> Self {
        ReferenceFleet::with_len(profiles.len(), dynamics, seed)
    }

    /// Build for a fleet of `n` devices (base latencies are irrelevant to
    /// the trajectory itself).
    pub fn with_len(n: usize, dynamics: FleetDynamics, seed: u64) -> Self {
        dynamics.validate();
        let is_static = dynamics.is_static();
        ReferenceFleet {
            n,
            dynamics,
            seed,
            is_static,
            trace: RwLock::new(Vec::new()),
        }
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Effective latency multiplier of `device` at `round`.
    pub fn multiplier(&self, device: usize, round: usize) -> f64 {
        if self.is_static {
            return 1.0;
        }
        self.with_round(round, |r| r.multiplier[device])
    }

    /// Whether `device` is reachable at the start of `round`.
    pub fn online(&self, device: usize, round: usize) -> bool {
        if self.is_static {
            return true;
        }
        self.with_round(round, |r| r.online[device])
    }

    /// Mid-interval failure fraction of `device` in `round`.
    pub fn fail_frac(&self, device: usize, round: usize) -> Option<f64> {
        if self.is_static {
            return None;
        }
        self.with_round(round, |r| r.fail_frac[device])
    }

    fn with_round<R>(&self, round: usize, f: impl FnOnce(&DenseRound) -> R) -> R {
        {
            let trace = self.trace.read().expect("reference trace poisoned");
            if round < trace.len() {
                return f(&trace[round]);
            }
        }
        let mut trace = self.trace.write().expect("reference trace poisoned");
        while trace.len() <= round {
            let next = self.advance(trace.last(), trace.len());
            trace.push(next);
        }
        f(&trace[round])
    }

    /// Realise round `round` from the previous round's state vectors —
    /// the whole fleet at once.
    fn advance(&self, prev: Option<&DenseRound>, round: usize) -> DenseRound {
        let n = self.n;
        let r = round as u64;

        // Fleet-wide modulator chain: one transition per round.
        let modulator_state = match &self.dynamics.modulator {
            CapacityModel::Static => 0,
            CapacityModel::Markov(chain) => {
                let u = unit(mix(self.seed, r, u64::MAX, ROLE_MODULATOR));
                match prev {
                    None => pick(&chain.initial, u),
                    Some(p) => {
                        let k = chain.states();
                        pick(
                            &chain.transitions[p.modulator_state * k..(p.modulator_state + 1) * k],
                            u,
                        )
                    }
                }
            }
        };

        let mut online = Vec::with_capacity(n);
        let mut multiplier = Vec::with_capacity(n);
        let mut fail_frac = Vec::with_capacity(n);
        let mut cap_state = Vec::with_capacity(n);

        for d in 0..n {
            let du = d as u64;

            // Capacity chain.
            let state = match &self.dynamics.capacity {
                CapacityModel::Static => 0,
                CapacityModel::Markov(chain) => {
                    let u = unit(mix(self.seed, r, du, ROLE_CAPACITY));
                    match prev {
                        None => pick(&chain.initial, u),
                        Some(p) => {
                            let k = chain.states();
                            let row =
                                &chain.transitions[p.cap_state[d] * k..(p.cap_state[d] + 1) * k];
                            pick(row, u)
                        }
                    }
                }
            };
            let mut m = match &self.dynamics.capacity {
                CapacityModel::Static => 1.0,
                CapacityModel::Markov(chain) => chain.multipliers[state],
            };

            // Transient straggler spike.
            if self.dynamics.spikes.prob > 0.0
                && unit(mix(self.seed, r, du, ROLE_SPIKE)) < self.dynamics.spikes.prob
            {
                m *= self.dynamics.spikes.magnitude;
            }

            // Fleet-wide correlated modulator.
            if let CapacityModel::Markov(chain) = &self.dynamics.modulator {
                m *= chain.multipliers[modulator_state];
            }

            // Availability chain.
            let on = match self.dynamics.availability {
                AvailabilityModel::AlwaysOn => true,
                AvailabilityModel::Churn { dropout, rejoin } => {
                    let was_on = match prev {
                        None => true,
                        Some(p) => p.online[d] && p.fail_frac[d].is_none(),
                    };
                    let u = unit(mix(self.seed, r, du, ROLE_AVAIL));
                    if was_on {
                        u >= dropout
                    } else {
                        u < rejoin
                    }
                }
            };

            // Mid-interval failure (only meaningful for online devices).
            let fail = if on
                && self.dynamics.mid_round_failure > 0.0
                && unit(mix(self.seed, r, du, ROLE_FAIL)) < self.dynamics.mid_round_failure
            {
                Some(unit(mix(self.seed, r, du, ROLE_FAIL_TIME)))
            } else {
                None
            };

            online.push(on);
            multiplier.push(m);
            fail_frac.push(fail);
            cap_state.push(state);
        }

        DenseRound {
            online,
            multiplier,
            fail_frac,
            cap_state,
            modulator_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetModel;

    fn profiles(n: usize) -> Vec<DeviceProfile> {
        (0..n)
            .map(|i| DeviceProfile::new(i, 1.0 + i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn reference_matches_lazy_on_the_edge_fleet_preset() {
        let mut dynamics = FleetDynamics::edge_fleet(0.25, 0.15);
        dynamics.spikes.prob = 0.1;
        let lazy = FleetModel::new(&profiles(25), dynamics.clone(), 77);
        let dense = ReferenceFleet::new(&profiles(25), dynamics, 77);
        for r in 0..10 {
            for d in 0..25 {
                assert_eq!(lazy.online(d, r), dense.online(d, r), "online {d}@{r}");
                assert_eq!(
                    lazy.multiplier(d, r).to_bits(),
                    dense.multiplier(d, r).to_bits(),
                    "multiplier {d}@{r}"
                );
                assert_eq!(
                    lazy.fail_frac(d, r).map(f64::to_bits),
                    dense.fail_frac(d, r).map(f64::to_bits),
                    "fail_frac {d}@{r}"
                );
            }
        }
    }

    #[test]
    fn reference_matches_lazy_under_the_shared_modulator() {
        let dynamics = FleetDynamics::planet_scale(0.2);
        let lazy = FleetModel::new(&profiles(12), dynamics.clone(), 5);
        let dense = ReferenceFleet::new(&profiles(12), dynamics, 5);
        for r in 0..20 {
            for d in 0..12 {
                assert_eq!(
                    lazy.multiplier(d, r).to_bits(),
                    dense.multiplier(d, r).to_bits(),
                    "multiplier {d}@{r}"
                );
                assert_eq!(lazy.online(d, r), dense.online(d, r));
                assert_eq!(
                    lazy.fail_frac(d, r).map(f64::to_bits),
                    dense.fail_frac(d, r).map(f64::to_bits)
                );
            }
        }
    }
}
