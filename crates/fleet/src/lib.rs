//! Deterministic fleet dynamics for heterogeneous federated simulation.
//!
//! The paper (and the seed reproduction) freezes the fleet: latencies are
//! sampled once, every device participates every round, and rings never
//! lose a member. Real edge fleets are nothing like that — capacity
//! drifts as devices heat up and background jobs come and go, devices
//! churn in and out of reachability, and a relay partner can die with a
//! model in flight. This crate is the substrate for simulating all of
//! that **without giving up bit-reproducibility**:
//!
//! * [`FleetDynamics`] — declarative config: Markov-modulated capacity
//!   states ([`MarkovCapacity`], e.g. idle/loaded/throttled), dropout /
//!   rejoin churn ([`AvailabilityModel`]), transient straggler spikes
//!   ([`SpikeModel`]), and mid-interval failures governed by a
//!   [`FailurePolicy`].
//! * [`FleetModel`] — the realised trajectory. Every random decision is
//!   a pure hash of `(seed, round, device, role)`; each device's state
//!   chain advances round-by-round from its own stream and is realised
//!   **lazily** (64-way sharded, O(devices queried) — never O(fleet)),
//!   so the same seed and config always produce the same fleet history
//!   regardless of query order, thread count or platform.
//! * [`sample_online_cohort`] — streaming rejection sampling of a K-device
//!   online cohort in O(K) expected work, the piece that makes
//!   million-device rounds cost O(cohort) end to end.
//! * [`ReferenceFleet`] — the dense whole-fleet-per-round realisation,
//!   kept as the executable specification the lazy path is proven
//!   bit-identical against.
//!
//! # Determinism contract
//!
//! `FleetDynamics::default()` is the static fleet: [`FleetModel`] then
//! short-circuits every query (`multiplier = 1.0`, `online = true`,
//! `fail_frac = None`) without touching the trace, which keeps default
//! experiments bit-identical to the pre-dynamics implementation — the
//! workspace's equivalence tests assert exactly that. Active dynamics
//! are reproducible in the same sense as the rest of the stack: one
//! `u64` seed pins the entire fleet trajectory.

pub mod dynamics;
pub mod model;
pub mod reference;
pub mod sampling;

pub use dynamics::{
    AvailabilityModel, CapacityModel, FailurePolicy, FleetDynamics, MarkovCapacity, SpikeModel,
};
pub use model::{FleetModel, RoundFleet};
pub use reference::ReferenceFleet;
pub use sampling::sample_online_cohort;
