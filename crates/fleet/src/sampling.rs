//! Streaming cohort sampling: pick K online devices out of a fleet of N
//! in O(K) expected work, without iterating — or realising state for —
//! the other N − K devices.

use crate::model::{mix, FleetModel};

/// The cohort draw stream is independent of every trajectory role.
const ROLE_COHORT: u64 = 0x00C0_4027;

/// Candidate draws per requested slot before the sampler gives up — the
/// bound that keeps heavily-churned (mostly-offline) fleets from looping
/// forever. 64 draws per slot makes a false shortfall vanishingly rare
/// for any fleet with ≥ ~2% of devices online.
const DRAWS_PER_SLOT: u64 = 64;

/// Sample up to `k` **distinct, online** devices for `round` by rejection
/// sampling over a hash stream.
///
/// Candidate `i` is `(mix(seed, round, i, COHORT) × n) >> 64` — an
/// unbiased multiply-shift reduction onto `0..n` — and is kept iff the
/// fleet says it is online this round (which lazily realises *only that
/// device's* trajectory). Draws stop as soon as `k` devices are found, so
/// expected cost is `k / online_fraction` fleet queries, independent of
/// fleet size.
///
/// Deterministic: a pure function of `(seed, round, k, fleet trajectory)`
/// — the draw index is the stream position, so thread timing and prior
/// queries cannot perturb it. The cohort is returned **sorted ascending
/// by device id** (the deterministic tie-break, and the order every
/// downstream consumer — clustering, ring building — already expects).
///
/// May return fewer than `k` devices when the online population is
/// smaller than `k` (or the draw budget of `64 × k` candidates is
/// exhausted); returns an empty vector on a fleet-wide blackout.
pub fn sample_online_cohort(fleet: &FleetModel, k: usize, round: usize, seed: u64) -> Vec<usize> {
    let n = fleet.len();
    assert!(n > 0, "no devices");
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut chosen = std::collections::BTreeSet::new();
    let max_draws = (k as u64).saturating_mul(DRAWS_PER_SLOT);
    for draw in 0..max_draws {
        let h = mix(seed, round as u64, draw, ROLE_COHORT);
        let device = ((h as u128 * n as u128) >> 64) as usize;
        if chosen.contains(&device) {
            continue;
        }
        if fleet.online(device, round) {
            chosen.insert(device);
            if chosen.len() == k {
                break;
            }
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetDynamics, FleetModel};
    use fedhisyn_simnet::{HeterogeneityModel, ProfileSource};

    fn lazy_fleet(n: usize, dynamics: FleetDynamics, seed: u64) -> FleetModel {
        let src = ProfileSource::lazy(n, HeterogeneityModel::Uniform { h: 10.0 }, 1.0, seed);
        FleetModel::with_source(src, dynamics, seed)
    }

    #[test]
    fn samples_k_distinct_sorted_devices_from_a_static_fleet() {
        let fleet = lazy_fleet(1_000_000, FleetDynamics::default(), 1);
        let cohort = sample_online_cohort(&fleet, 10, 0, 42);
        assert_eq!(cohort.len(), 10);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        assert!(cohort.iter().all(|&d| d < 1_000_000));
    }

    #[test]
    fn sampling_is_deterministic_and_round_sensitive() {
        let fleet = lazy_fleet(100_000, FleetDynamics::churn(0.2), 7);
        let a = sample_online_cohort(&fleet, 16, 3, 9);
        let b = sample_online_cohort(&fleet, 16, 3, 9);
        assert_eq!(a, b);
        let other_round = sample_online_cohort(&fleet, 16, 4, 9);
        assert_ne!(a, other_round, "rounds draw from distinct streams");
        let other_seed = sample_online_cohort(&fleet, 16, 3, 10);
        assert_ne!(a, other_seed, "seeds draw from distinct streams");
    }

    #[test]
    fn sampled_devices_are_online_and_realisation_stays_o_cohort() {
        let fleet = lazy_fleet(1_000_000, FleetDynamics::churn(0.3), 11);
        let mut total = 0;
        for round in 0..8 {
            let cohort = sample_online_cohort(&fleet, 12, round, 5);
            assert!(!cohort.is_empty());
            for &d in &cohort {
                assert!(fleet.online(d, round));
            }
            total += cohort.len();
        }
        // Only sampled candidates realise trajectories — orders of
        // magnitude below fleet size.
        let realised = fleet.realised_devices();
        assert!(realised >= total / 8, "cohort members are realised");
        assert!(
            realised < 8 * 12 * 64,
            "realisation bounded by the draw budget, got {realised}"
        );
        assert!(realised < 1_000_000 / 100, "nowhere near O(fleet)");
    }

    #[test]
    fn shortfall_is_graceful_on_mostly_offline_fleets() {
        // dropout 1.0, rejoin 0.0: everyone goes dark at round 0.
        let fleet = lazy_fleet(
            1000,
            FleetDynamics {
                availability: crate::AvailabilityModel::Churn {
                    dropout: 1.0,
                    rejoin: 0.0,
                },
                ..FleetDynamics::default()
            },
            3,
        );
        let cohort = sample_online_cohort(&fleet, 8, 2, 1);
        assert!(cohort.is_empty(), "blackout yields an empty cohort");
    }

    #[test]
    fn k_larger_than_fleet_clamps() {
        let fleet = lazy_fleet(5, FleetDynamics::default(), 2);
        let cohort = sample_online_cohort(&fleet, 50, 0, 3);
        assert_eq!(cohort, vec![0, 1, 2, 3, 4]);
    }
}
