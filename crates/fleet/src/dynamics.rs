//! Configuration of the fleet-dynamics processes.
//!
//! Everything here is *declarative*: the structs describe stochastic
//! processes (Markov-modulated capacity, churn, straggler spikes,
//! mid-round failures) whose realisations are produced by
//! [`crate::FleetModel`] purely from the experiment seed. The same
//! config + seed always yields the same fleet trajectory, bit for bit.

use serde::{Deserialize, Serialize};

/// What a ring does with the models a device holds when it fails
/// mid-interval. Mirrors `ReceivePolicy`: one small enum per in-ring
/// decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FailurePolicy {
    /// The dead device's freshest model (pending arrival, else the model
    /// it was training) is forwarded to its ring successor, and the ring
    /// is repaired around the gap — the relay's self-healing mode.
    #[default]
    ForwardToSuccessor,
    /// Models held by the dead device are lost; arrivals addressed to it
    /// are dropped. Successors keep refining their own models (Eq. 7).
    DropInFlight,
}

/// Markov-modulated capacity: each device walks a small state machine
/// (e.g. idle / loaded / throttled) whose states scale its base latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovCapacity {
    /// Latency multiplier of each state (state 0 is conventionally the
    /// baseline, multiplier 1.0). All must be positive.
    pub multipliers: Vec<f64>,
    /// Row-major `K × K` transition matrix applied once per round; each
    /// row must sum to ~1.
    pub transitions: Vec<f64>,
    /// Initial state distribution (length `K`, sums to ~1).
    pub initial: Vec<f64>,
}

impl MarkovCapacity {
    /// The canonical three-state edge-device profile: mostly idle,
    /// sometimes loaded (2.5× slower), occasionally thermally throttled
    /// (6× slower). States are sticky, so capacity drifts over rounds
    /// instead of being resampled i.i.d.
    pub fn idle_loaded_throttled() -> Self {
        MarkovCapacity {
            multipliers: vec![1.0, 2.5, 6.0],
            transitions: vec![
                0.85, 0.12, 0.03, // idle → …
                0.25, 0.65, 0.10, // loaded → …
                0.20, 0.30, 0.50, // throttled → …
            ],
            initial: vec![0.70, 0.25, 0.05],
        }
    }

    /// A single-state chain with multiplier 1.0 — dynamically *active*
    /// but numerically the identity. Used by equivalence tests to prove
    /// the dynamic code path reproduces the static one bit-for-bit.
    pub fn identity() -> Self {
        MarkovCapacity {
            multipliers: vec![1.0],
            transitions: vec![1.0],
            initial: vec![1.0],
        }
    }

    /// A fleet-wide diurnal/burst chain for the shared modulator: the
    /// fleet is mostly off-peak (1.0), drifts into peak hours where
    /// every device is 1.8× slower, and occasionally hits a partition
    /// burst (a backbone or regional outage echo) at 4×. One chain
    /// serves the whole fleet, so correlated slowdowns cost O(1) state
    /// per round regardless of fleet size.
    pub fn diurnal_burst() -> Self {
        MarkovCapacity {
            multipliers: vec![1.0, 1.8, 4.0],
            transitions: vec![
                0.90, 0.09, 0.01, // off-peak → …
                0.15, 0.82, 0.03, // peak → …
                0.30, 0.30, 0.40, // burst → …
            ],
            initial: vec![0.85, 0.14, 0.01],
        }
    }

    /// Number of states `K`.
    pub fn states(&self) -> usize {
        self.multipliers.len()
    }

    /// Panics unless the chain is well-formed.
    pub fn validate(&self) {
        let k = self.states();
        assert!(k > 0, "capacity chain needs at least one state");
        // Realised states are stored as one byte per (device, round) in
        // the lazy trajectory shards.
        assert!(k <= 256, "capacity chains support at most 256 states");
        assert_eq!(
            self.transitions.len(),
            k * k,
            "transition matrix must be K×K"
        );
        assert_eq!(
            self.initial.len(),
            k,
            "initial distribution must have K entries"
        );
        assert!(
            self.multipliers.iter().all(|&m| m.is_finite() && m > 0.0),
            "state multipliers must be positive"
        );
        for row in self.transitions.chunks(k) {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6 && row.iter().all(|&p| p >= 0.0),
                "each transition row must be a distribution, got {row:?}"
            );
        }
        let init_sum: f64 = self.initial.iter().sum();
        assert!(
            (init_sum - 1.0).abs() < 1e-6 && self.initial.iter().all(|&p| p >= 0.0),
            "initial state weights must be a distribution"
        );
    }
}

/// How a device's effective training latency evolves over rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum CapacityModel {
    /// Latencies never change (the paper's setting).
    #[default]
    Static,
    /// Markov-modulated latency states.
    Markov(MarkovCapacity),
}

/// Whether devices come and go between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AvailabilityModel {
    /// Every device is reachable every round (the paper's setting).
    #[default]
    AlwaysOn,
    /// Two-state churn chain: an online device drops out with probability
    /// `dropout` per round; an offline device rejoins with probability
    /// `rejoin`. The chain starts from an all-online fleet, with the
    /// first transition applied at round 0 — so even the first round may
    /// see dropouts.
    Churn {
        /// Per-round P(online → offline).
        dropout: f64,
        /// Per-round P(offline → online).
        rejoin: f64,
    },
}

impl AvailabilityModel {
    fn validate(&self) {
        if let AvailabilityModel::Churn { dropout, rejoin } = self {
            assert!(
                (0.0..=1.0).contains(dropout) && (0.0..=1.0).contains(rejoin),
                "churn probabilities must be in [0, 1]"
            );
        }
    }
}

/// Transient straggler spikes: independently each round, a device's
/// latency is multiplied by `magnitude` with probability `prob` —
/// modelling GC pauses, backup jobs, contended radios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeModel {
    /// Per-(device, round) spike probability.
    pub prob: f64,
    /// Latency multiplier while spiking (≥ 1).
    pub magnitude: f64,
}

impl Default for SpikeModel {
    fn default() -> Self {
        SpikeModel {
            prob: 0.0,
            magnitude: 1.0,
        }
    }
}

/// The full fleet-dynamics specification. [`FleetDynamics::default`] is
/// the static fleet: the runtime takes a zero-cost fast path that is
/// bit-identical to the pre-dynamics code. (Note: configs serialized
/// before the `fleet` field existed need the field added before they
/// deserialize — the offline serde shim does not support field
/// defaulting.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FleetDynamics {
    /// Time-varying capacity (latency multipliers).
    pub capacity: CapacityModel,
    /// Round-level dropout / rejoin churn.
    pub availability: AvailabilityModel,
    /// Transient straggler spikes.
    pub spikes: SpikeModel,
    /// Per-round probability that an *online* device fails mid-interval
    /// (crashes while relaying inside a ring, or before uploading).
    pub mid_round_failure: f64,
    /// What rings do with models held by a mid-interval casualty.
    pub failure_policy: FailurePolicy,
    /// Fleet-wide *shared* capacity modulator: one Markov chain whose
    /// per-round multiplier scales **every** device's effective latency
    /// (diurnal load, regional partition bursts). Unlike `capacity`,
    /// which walks an independent chain per device, the modulator costs
    /// O(1) state per round regardless of fleet size — the correlated
    /// half of the churn model. `Static` (the default) is the exact
    /// identity: no multiply is applied, so pre-modulator trajectories
    /// are reproduced bit-for-bit.
    pub modulator: CapacityModel,
}

impl FleetDynamics {
    /// True when every process is degenerate — the runtime then skips the
    /// trace machinery entirely, guaranteeing the static fast path.
    pub fn is_static(&self) -> bool {
        matches!(self.capacity, CapacityModel::Static)
            && self.availability == AvailabilityModel::AlwaysOn
            && self.spikes.prob == 0.0
            && self.mid_round_failure == 0.0
            && matches!(self.modulator, CapacityModel::Static)
    }

    /// Pure churn at the given per-round dropout rate — the knob
    /// `fig_churn` sweeps. Rejoin is `max(rate, 0.25)`: floored so that
    /// low-dropout fleets recover devices within a few rounds (steady-
    /// state offline fraction `rate / (rate + rejoin)` stays below 50%),
    /// and symmetric (`rejoin == dropout`) once `rate >= 0.25`.
    pub fn churn(rate: f64) -> Self {
        FleetDynamics {
            availability: AvailabilityModel::Churn {
                dropout: rate,
                rejoin: rate.max(0.25),
            },
            ..FleetDynamics::default()
        }
    }

    /// The full edge-fleet stress preset: sticky Markov capacity states,
    /// churn, occasional 4× straggler spikes and mid-ring failures.
    pub fn edge_fleet(dropout: f64, mid_round_failure: f64) -> Self {
        FleetDynamics {
            capacity: CapacityModel::Markov(MarkovCapacity::idle_loaded_throttled()),
            availability: AvailabilityModel::Churn {
                dropout,
                rejoin: 0.5,
            },
            spikes: SpikeModel {
                prob: 0.05,
                magnitude: 4.0,
            },
            mid_round_failure,
            failure_policy: FailurePolicy::ForwardToSuccessor,
            modulator: CapacityModel::Static,
        }
    }

    /// The million-device testbed preset: pure per-device churn plus the
    /// fleet-wide diurnal/burst modulator — the regime where lazy O(cohort)
    /// realisation matters and correlated slowdowns stay O(1) per round.
    /// (Per-device Markov capacity is deliberately off: at planet scale
    /// the shared modulator carries the correlated signal.)
    pub fn planet_scale(dropout: f64) -> Self {
        FleetDynamics {
            availability: AvailabilityModel::Churn {
                dropout,
                rejoin: dropout.max(0.25),
            },
            mid_round_failure: 0.02,
            modulator: CapacityModel::Markov(MarkovCapacity::diurnal_burst()),
            ..FleetDynamics::default()
        }
    }

    /// Panics unless every sub-model is well-formed.
    pub fn validate(&self) {
        if let CapacityModel::Markov(chain) = &self.capacity {
            chain.validate();
        }
        if let CapacityModel::Markov(chain) = &self.modulator {
            chain.validate();
        }
        self.availability.validate();
        assert!(
            (0.0..=1.0).contains(&self.spikes.prob) && self.spikes.magnitude >= 1.0,
            "spike prob must be in [0, 1] and magnitude >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.mid_round_failure),
            "mid_round_failure must be in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_static() {
        assert!(FleetDynamics::default().is_static());
        FleetDynamics::default().validate();
    }

    #[test]
    fn presets_are_dynamic_and_valid() {
        for d in [
            FleetDynamics::churn(0.1),
            FleetDynamics::edge_fleet(0.1, 0.05),
            FleetDynamics::planet_scale(0.1),
        ] {
            assert!(!d.is_static());
            d.validate();
        }
    }

    #[test]
    fn modulator_alone_activates_dynamics() {
        let d = FleetDynamics {
            modulator: CapacityModel::Markov(MarkovCapacity::diurnal_burst()),
            ..FleetDynamics::default()
        };
        assert!(!d.is_static());
        d.validate();
        MarkovCapacity::diurnal_burst().validate();
    }

    #[test]
    fn identity_chain_is_active_but_neutral() {
        let d = FleetDynamics {
            capacity: CapacityModel::Markov(MarkovCapacity::identity()),
            ..FleetDynamics::default()
        };
        // Active (exercises the dynamic path) …
        assert!(!d.is_static());
        // … and valid.
        d.validate();
    }

    #[test]
    fn canonical_chain_is_well_formed() {
        MarkovCapacity::idle_loaded_throttled().validate();
        assert_eq!(MarkovCapacity::idle_loaded_throttled().states(), 3);
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn bad_transition_row_panics() {
        let mut chain = MarkovCapacity::identity();
        chain.transitions = vec![0.5];
        chain.validate();
    }

    #[test]
    fn serde_round_trip() {
        let d = FleetDynamics::edge_fleet(0.2, 0.1);
        let json = serde_json::to_string(&d).unwrap();
        let back: FleetDynamics = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
