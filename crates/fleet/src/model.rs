//! The realised fleet trajectory: deterministic, memoized, seed-driven.

use std::sync::RwLock;

use fedhisyn_simnet::DeviceProfile;

use crate::dynamics::{AvailabilityModel, CapacityModel, FleetDynamics};

/// SplitMix64 finalizer over the XOR of the inputs — the same stateless
/// seed-derivation scheme the core crate uses (`core::env::seed_mix`),
/// duplicated here so `fleet` stays below `core` in the dependency graph.
fn mix(master: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = master
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash — the top 53 bits, so the mapping is
/// exact in f64 and identical on every platform.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Roles keeping the per-(round, device) random streams independent.
const ROLE_CAPACITY: u64 = 0xCA9A_C17F;
const ROLE_AVAIL: u64 = 0xA1A1_B111;
const ROLE_SPIKE: u64 = 0x005B_1CE5;
const ROLE_FAIL: u64 = 0x00FA_110F;
const ROLE_FAIL_TIME: u64 = 0xFA11_71ED;

/// Sample an index from a discrete distribution by inverse CDF.
fn pick(weights: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// One round's realised fleet conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFleet {
    /// Whether each device is reachable at round start.
    pub online: Vec<bool>,
    /// Effective latency multiplier per device (capacity state × spike).
    pub multiplier: Vec<f64>,
    /// For online devices that crash mid-interval: the fraction of the
    /// round interval at which they die. `None` = survives the round.
    pub fail_frac: Vec<Option<f64>>,
    /// Capacity-chain state per device (internal, carried between rounds).
    cap_state: Vec<usize>,
}

/// The fleet's realised trajectory over rounds.
///
/// # Determinism contract
///
/// Round `r`'s conditions are a pure function of `(seed, dynamics, r)`:
/// every random decision hashes `(seed, round, device, role)` through the
/// same SplitMix64 mix the rest of the stack uses, and state chains
/// (capacity, availability) advance strictly round-by-round from that
/// hash stream. The trace is memoized behind a reader-writer lock —
/// parallel training loops querying an already-realised round share a
/// read lock; the write lock is only taken to extend the trace — and the
/// *values* never depend on query order or thread timing: two processes
/// asking for round 500 in any order see identical vectors. The static
/// config ([`FleetDynamics::is_static`]) bypasses the trace entirely, so
/// default experiments pay nothing and stay bit-identical to the
/// pre-dynamics code.
#[derive(Debug)]
pub struct FleetModel {
    base: Vec<f64>,
    dynamics: FleetDynamics,
    seed: u64,
    is_static: bool,
    trace: RwLock<Vec<RoundFleet>>,
}

impl FleetModel {
    /// Build from the fleet's sampled base profiles.
    pub fn new(profiles: &[DeviceProfile], dynamics: FleetDynamics, seed: u64) -> Self {
        dynamics.validate();
        let is_static = dynamics.is_static();
        FleetModel {
            base: profiles.iter().map(|p| p.train_time).collect(),
            dynamics,
            seed,
            is_static,
            trace: RwLock::new(Vec::new()),
        }
    }

    /// A static fleet over `profiles` (the default in every test env).
    pub fn static_fleet(profiles: &[DeviceProfile]) -> Self {
        FleetModel::new(profiles, FleetDynamics::default(), 0)
    }

    /// The dynamics specification this model realises.
    pub fn dynamics(&self) -> &FleetDynamics {
        &self.dynamics
    }

    /// True when the model is the degenerate static fleet.
    pub fn is_static(&self) -> bool {
        self.is_static
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Effective latency multiplier of `device` at `round` (1.0 static).
    pub fn multiplier(&self, device: usize, round: usize) -> f64 {
        if self.is_static {
            return 1.0;
        }
        self.with_round(round, |r| r.multiplier[device])
    }

    /// Whether `device` is reachable at the start of `round`.
    pub fn online(&self, device: usize, round: usize) -> bool {
        if self.is_static {
            return true;
        }
        self.with_round(round, |r| r.online[device])
    }

    /// Mid-interval failure point of `device` in `round`, as a fraction
    /// of the round interval. `None` = the device survives the round.
    pub fn fail_frac(&self, device: usize, round: usize) -> Option<f64> {
        if self.is_static {
            return None;
        }
        self.with_round(round, |r| r.fail_frac[device])
    }

    /// Effective latency of `device` at `round`: the base profile scaled
    /// by the round's capacity multiplier.
    pub fn latency(&self, device: usize, round: usize) -> f64 {
        self.base[device] * self.multiplier(device, round)
    }

    /// Clone out one round's realised conditions (benches, figures).
    pub fn round_snapshot(&self, round: usize) -> RoundFleet {
        if self.is_static {
            let n = self.len();
            return RoundFleet {
                online: vec![true; n],
                multiplier: vec![1.0; n],
                fail_frac: vec![None; n],
                cap_state: vec![0; n],
            };
        }
        self.with_round(round, |r| r.clone())
    }

    fn with_round<R>(&self, round: usize, f: impl FnOnce(&RoundFleet) -> R) -> R {
        // Fast path: the round is already realised — readers share the
        // lock, so per-device queries inside parallel training loops do
        // not serialize each other.
        {
            let trace = self.trace.read().expect("fleet trace poisoned");
            if round < trace.len() {
                return f(&trace[round]);
            }
        }
        let mut trace = self.trace.write().expect("fleet trace poisoned");
        while trace.len() <= round {
            let next = self.advance(trace.last(), trace.len());
            trace.push(next);
        }
        f(&trace[round])
    }

    /// Realise round `round` from the previous round's state vectors.
    fn advance(&self, prev: Option<&RoundFleet>, round: usize) -> RoundFleet {
        let n = self.len();
        let r = round as u64;
        let mut online = Vec::with_capacity(n);
        let mut multiplier = Vec::with_capacity(n);
        let mut fail_frac = Vec::with_capacity(n);
        let mut cap_state = Vec::with_capacity(n);

        for d in 0..n {
            let du = d as u64;

            // Capacity chain.
            let state = match &self.dynamics.capacity {
                CapacityModel::Static => 0,
                CapacityModel::Markov(chain) => {
                    let u = unit(mix(self.seed, r, du, ROLE_CAPACITY));
                    match prev {
                        None => pick(&chain.initial, u),
                        Some(p) => {
                            let k = chain.states();
                            let row =
                                &chain.transitions[p.cap_state[d] * k..(p.cap_state[d] + 1) * k];
                            pick(row, u)
                        }
                    }
                }
            };
            let mut m = match &self.dynamics.capacity {
                CapacityModel::Static => 1.0,
                CapacityModel::Markov(chain) => chain.multipliers[state],
            };

            // Transient straggler spike.
            if self.dynamics.spikes.prob > 0.0
                && unit(mix(self.seed, r, du, ROLE_SPIKE)) < self.dynamics.spikes.prob
            {
                m *= self.dynamics.spikes.magnitude;
            }

            // Availability chain. A device that failed mid-interval last
            // round counts as offline going into the churn transition —
            // it has to "rejoin" like any other dropout. Under AlwaysOn
            // it reboots in time for the next round.
            let on = match self.dynamics.availability {
                AvailabilityModel::AlwaysOn => true,
                AvailabilityModel::Churn { dropout, rejoin } => {
                    let was_on = match prev {
                        None => true,
                        Some(p) => p.online[d] && p.fail_frac[d].is_none(),
                    };
                    let u = unit(mix(self.seed, r, du, ROLE_AVAIL));
                    if was_on {
                        u >= dropout
                    } else {
                        u < rejoin
                    }
                }
            };

            // Mid-interval failure (only meaningful for online devices).
            let fail = if on
                && self.dynamics.mid_round_failure > 0.0
                && unit(mix(self.seed, r, du, ROLE_FAIL)) < self.dynamics.mid_round_failure
            {
                Some(unit(mix(self.seed, r, du, ROLE_FAIL_TIME)))
            } else {
                None
            };

            online.push(on);
            multiplier.push(m);
            fail_frac.push(fail);
            cap_state.push(state);
        }

        RoundFleet {
            online,
            multiplier,
            fail_frac,
            cap_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{MarkovCapacity, SpikeModel};

    fn profiles(n: usize) -> Vec<DeviceProfile> {
        (0..n)
            .map(|i| DeviceProfile::new(i, 1.0 + i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn static_fleet_is_identity() {
        let m = FleetModel::static_fleet(&profiles(4));
        assert!(m.is_static());
        for r in 0..5 {
            for d in 0..4 {
                assert_eq!(m.multiplier(d, r), 1.0);
                assert!(m.online(d, r));
                assert_eq!(m.fail_frac(d, r), None);
                assert_eq!(m.latency(d, r), 1.0 + d as f64 * 0.5);
            }
        }
    }

    #[test]
    fn identity_chain_matches_static_values() {
        let dynamic = FleetModel::new(
            &profiles(6),
            FleetDynamics {
                capacity: CapacityModel::Markov(MarkovCapacity::identity()),
                ..FleetDynamics::default()
            },
            7,
        );
        assert!(!dynamic.is_static());
        for r in 0..4 {
            for d in 0..6 {
                assert_eq!(dynamic.multiplier(d, r), 1.0);
                assert!(dynamic.online(d, r));
                assert_eq!(dynamic.fail_frac(d, r), None);
            }
        }
    }

    #[test]
    fn trajectory_is_deterministic_and_query_order_independent() {
        let make = || FleetModel::new(&profiles(10), FleetDynamics::edge_fleet(0.2, 0.1), 42);
        let a = make();
        let b = make();
        // Query b backwards, a forwards — identical realisations.
        let rounds = 8;
        let fwd: Vec<RoundFleet> = (0..rounds).map(|r| a.round_snapshot(r)).collect();
        let bwd: Vec<RoundFleet> = (0..rounds).rev().map(|r| b.round_snapshot(r)).collect();
        for (r, snap) in fwd.iter().enumerate() {
            assert_eq!(*snap, bwd[rounds - 1 - r], "round {r} diverged");
        }
    }

    #[test]
    fn churn_takes_devices_offline_and_back() {
        let m = FleetModel::new(&profiles(50), FleetDynamics::churn(0.3), 3);
        let mut ever_off = 0;
        let mut came_back = 0;
        for d in 0..50 {
            let mut was_off = false;
            for r in 0..20 {
                let on = m.online(d, r);
                if !on {
                    was_off = true;
                } else if was_off {
                    came_back += 1;
                    break;
                }
            }
            if was_off {
                ever_off += 1;
            }
        }
        assert!(
            ever_off > 20,
            "30% churn should hit most devices: {ever_off}"
        );
        assert!(
            came_back > 10,
            "rejoin must bring devices back: {came_back}"
        );
    }

    #[test]
    fn markov_states_change_latency_over_time() {
        let m = FleetModel::new(
            &profiles(20),
            FleetDynamics {
                capacity: CapacityModel::Markov(MarkovCapacity::idle_loaded_throttled()),
                ..FleetDynamics::default()
            },
            11,
        );
        let mut distinct = std::collections::BTreeSet::new();
        for r in 0..30 {
            for d in 0..20 {
                distinct.insert((m.multiplier(d, r) * 10.0) as i64);
            }
        }
        assert!(
            distinct.len() >= 3,
            "all three states should be visited: {distinct:?}"
        );
    }

    #[test]
    fn spikes_inflate_latency_occasionally() {
        let m = FleetModel::new(
            &profiles(30),
            FleetDynamics {
                spikes: SpikeModel {
                    prob: 0.2,
                    magnitude: 4.0,
                },
                ..FleetDynamics::default()
            },
            5,
        );
        let mut spiked = 0;
        let mut total = 0;
        for r in 0..20 {
            for d in 0..30 {
                total += 1;
                if m.multiplier(d, r) > 1.0 {
                    spiked += 1;
                }
            }
        }
        let rate = spiked as f64 / total as f64;
        assert!((0.1..0.3).contains(&rate), "spike rate {rate}");
    }

    #[test]
    fn failures_only_strike_online_devices() {
        let m = FleetModel::new(
            &profiles(40),
            FleetDynamics {
                availability: AvailabilityModel::Churn {
                    dropout: 0.4,
                    rejoin: 0.3,
                },
                mid_round_failure: 0.3,
                ..FleetDynamics::default()
            },
            9,
        );
        let mut failures = 0;
        for r in 0..15 {
            for d in 0..40 {
                if let Some(f) = m.fail_frac(d, r) {
                    failures += 1;
                    assert!(m.online(d, r), "only online devices can fail mid-round");
                    assert!((0.0..1.0).contains(&f));
                }
            }
        }
        assert!(failures > 20, "failures should occur: {failures}");
    }

    #[test]
    fn failed_devices_count_as_offline_for_the_churn_transition() {
        // With rejoin = 0, any device that fails mid-round under churn
        // must stay offline forever after.
        let m = FleetModel::new(
            &profiles(30),
            FleetDynamics {
                availability: AvailabilityModel::Churn {
                    dropout: 0.0,
                    rejoin: 0.0,
                },
                mid_round_failure: 0.5,
                ..FleetDynamics::default()
            },
            13,
        );
        for d in 0..30 {
            let mut dead = false;
            for r in 0..10 {
                if dead {
                    assert!(!m.online(d, r), "device {d} must stay down after failing");
                }
                if m.fail_frac(d, r).is_some() {
                    dead = true;
                }
            }
        }
    }

    #[test]
    fn different_seeds_realise_different_fleets() {
        let a = FleetModel::new(&profiles(20), FleetDynamics::edge_fleet(0.2, 0.1), 1);
        let b = FleetModel::new(&profiles(20), FleetDynamics::edge_fleet(0.2, 0.1), 2);
        let same = (0..10).all(|r| a.round_snapshot(r) == b.round_snapshot(r));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn pick_covers_edges() {
        assert_eq!(pick(&[0.5, 0.5], 0.0), 0);
        assert_eq!(pick(&[0.5, 0.5], 0.75), 1);
        // u beyond the accumulated mass (rounding) clamps to the last.
        assert_eq!(pick(&[0.5, 0.5], 1.0), 1);
    }
}
