//! The realised fleet trajectory: deterministic, lazy, seed-driven.
//!
//! Per-round cost is **O(devices queried)**, not O(fleet): each device's
//! capacity/availability chain is realised independently and on demand,
//! stored in sharded per-device state. A million-device fleet where only
//! a 10-device cohort is queried per round costs ten trajectories —
//! every other device costs zero bytes and zero hashes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use fedhisyn_simnet::{DeviceProfile, ProfileSource};

use crate::dynamics::{AvailabilityModel, CapacityModel, FleetDynamics};

/// SplitMix64 finalizer over the XOR of the inputs — the same stateless
/// seed-derivation scheme the core crate uses (`core::env::seed_mix`),
/// duplicated here so `fleet` stays below `core` in the dependency graph.
pub(crate) fn mix(master: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = master
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash — the top 53 bits, so the mapping is
/// exact in f64 and identical on every platform.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Roles keeping the per-(round, device) random streams independent.
pub(crate) const ROLE_CAPACITY: u64 = 0xCA9A_C17F;
pub(crate) const ROLE_AVAIL: u64 = 0xA1A1_B111;
pub(crate) const ROLE_SPIKE: u64 = 0x005B_1CE5;
pub(crate) const ROLE_FAIL: u64 = 0x00FA_110F;
pub(crate) const ROLE_FAIL_TIME: u64 = 0xFA11_71ED;
/// The fleet-wide modulator chain draws from its own stream; the device
/// slot is pinned to `u64::MAX` (no real device) so it can never collide
/// with a per-device role.
pub(crate) const ROLE_MODULATOR: u64 = 0x00D1_0DA7;

/// Sample an index from a discrete distribution by inverse CDF.
pub(crate) fn pick(weights: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// The per-(device, round) state that must be *carried* between rounds.
///
/// Everything else (spike, mid-round failure and its fraction, the
/// effective multiplier) is memoryless — recomputable from hashes given
/// this state — so the lazy trajectory stores two bytes per realised
/// round instead of the dense path's ~26.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DevRound {
    /// Capacity-chain state (chains are capped at 256 states).
    pub(crate) cap_state: u8,
    /// Whether the device is reachable at round start.
    pub(crate) online: bool,
}

/// One device's realised trajectory: rounds `0..len` in order.
type DeviceTraj = Vec<DevRound>;

/// One shard of the fleet's lazy per-device state.
#[derive(Debug, Default)]
struct Shard {
    /// Realised trajectories keyed by device id.
    slots: Mutex<HashMap<u64, DeviceTraj>>,
    /// Queries routed to this shard (diagnostics: the O(cohort) tripwire).
    touched: AtomicU64,
}

/// One round's realised fleet conditions — a compact SoA snapshot.
///
/// `online` is a bitset, failures are a sparse sorted list, and the
/// static fast path uses `None` for the uniform vectors, so snapshotting
/// a static fleet allocates nothing at all.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFleet {
    n: usize,
    /// Online bitset (`None` = every device online).
    online: Option<Vec<u64>>,
    /// Effective latency multiplier per device (`None` = all 1.0).
    multiplier: Option<Vec<f64>>,
    /// Sparse `(device, fraction)` mid-round failures, sorted by device.
    failures: Vec<(usize, f64)>,
}

impl RoundFleet {
    /// Number of devices the snapshot covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the snapshot covers no devices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `device` is reachable at round start.
    pub fn online(&self, device: usize) -> bool {
        assert!(device < self.n, "device {device} out of range");
        match &self.online {
            None => true,
            Some(bits) => bits[device / 64] >> (device % 64) & 1 == 1,
        }
    }

    /// Effective latency multiplier of `device`.
    pub fn multiplier(&self, device: usize) -> f64 {
        assert!(device < self.n, "device {device} out of range");
        match &self.multiplier {
            None => 1.0,
            Some(m) => m[device],
        }
    }

    /// Mid-round failure fraction of `device` (`None` = survives).
    pub fn fail_frac(&self, device: usize) -> Option<f64> {
        assert!(device < self.n, "device {device} out of range");
        self.failures
            .binary_search_by_key(&device, |&(d, _)| d)
            .ok()
            .map(|i| self.failures[i].1)
    }

    /// Number of online devices.
    pub fn online_count(&self) -> usize {
        match &self.online {
            None => self.n,
            Some(bits) => bits.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }
}

/// The fleet's realised trajectory over rounds.
///
/// # Determinism contract
///
/// Device `d`'s conditions at round `r` are a **pure function of
/// `(seed, dynamics, d, r)`**: every random decision hashes
/// `(seed, round, device, role)` through the same SplitMix64 mix the rest
/// of the stack uses, and each device's state chain (capacity,
/// availability) advances strictly round-by-round from *its own* hash
/// stream — device chains never read each other, which is what makes
/// per-device lazy realisation bit-identical to realising the whole
/// fleet densely. The invariants, asserted by the workspace's
/// equivalence proptests:
///
/// * **Query-order independence** — asking for `(d, r)` in any order,
///   from any number of threads, yields identical values; memoization
///   (64-way sharded, per-device) only caches, never perturbs.
/// * **O(queried) realisation** — a device that is never queried costs
///   zero bytes and zero hash evaluations; realised state is bounded by
///   `devices queried × rounds`, never fleet size.
/// * **Static fast path** — [`FleetDynamics::is_static`] short-circuits
///   every query with no shard traffic, keeping default experiments
///   bit-identical to the pre-dynamics code.
/// * **Carried state is minimal** — only `(capacity state, online)` is
///   stored per realised round (two bytes); spikes, failures and the
///   effective multiplier are memoryless and recomputed from hashes,
///   bit-identically, on every read.
///
/// The shared fleet-wide modulator chain ([`FleetDynamics::modulator`])
/// realises one state per round for the *whole* fleet (O(1) memoized),
/// and its multiplier is applied after the per-device capacity × spike
/// product. `CapacityModel::Static` (the default) applies no multiply,
/// so pre-modulator trajectories are reproduced exactly.
#[derive(Debug)]
pub struct FleetModel {
    profiles: ProfileSource,
    dynamics: FleetDynamics,
    seed: u64,
    is_static: bool,
    shards: Vec<Shard>,
    /// Memoized fleet-wide modulator states (one byte per round).
    modulator_memo: RwLock<Vec<u8>>,
}

impl FleetModel {
    /// Number of trajectory shards (queries hash by `device % SHARD_COUNT`).
    pub const SHARD_COUNT: usize = 64;

    /// Build from the fleet's sampled base profiles.
    pub fn new(profiles: &[DeviceProfile], dynamics: FleetDynamics, seed: u64) -> Self {
        FleetModel::with_source(ProfileSource::from_profiles(profiles), dynamics, seed)
    }

    /// Build over any profile source — in particular a lazy one, so a
    /// million-device fleet costs no per-device memory up front.
    pub fn with_source(profiles: ProfileSource, dynamics: FleetDynamics, seed: u64) -> Self {
        dynamics.validate();
        let is_static = dynamics.is_static();
        FleetModel {
            profiles,
            dynamics,
            seed,
            is_static,
            shards: (0..FleetModel::SHARD_COUNT)
                .map(|_| Shard::default())
                .collect(),
            modulator_memo: RwLock::new(Vec::new()),
        }
    }

    /// A static fleet over `profiles` (the default in every test env).
    pub fn static_fleet(profiles: &[DeviceProfile]) -> Self {
        FleetModel::new(profiles, FleetDynamics::default(), 0)
    }

    /// The dynamics specification this model realises.
    pub fn dynamics(&self) -> &FleetDynamics {
        &self.dynamics
    }

    /// The base-profile source (dense or lazy).
    pub fn profile_source(&self) -> &ProfileSource {
        &self.profiles
    }

    /// True when the model is the degenerate static fleet.
    pub fn is_static(&self) -> bool {
        self.is_static
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Base (multiplier-1.0) latency of `device`.
    pub fn base_latency(&self, device: usize) -> f64 {
        self.profiles.train_time(device)
    }

    /// Effective latency multiplier of `device` at `round` (1.0 static).
    pub fn multiplier(&self, device: usize, round: usize) -> f64 {
        if self.is_static {
            return 1.0;
        }
        let dr = self.device_round(device, round);
        self.multiplier_of(device, round, dr)
    }

    /// Whether `device` is reachable at the start of `round`.
    pub fn online(&self, device: usize, round: usize) -> bool {
        if self.is_static {
            return true;
        }
        self.device_round(device, round).online
    }

    /// Mid-interval failure point of `device` in `round`, as a fraction
    /// of the round interval. `None` = the device survives the round.
    pub fn fail_frac(&self, device: usize, round: usize) -> Option<f64> {
        if self.is_static {
            return None;
        }
        let dr = self.device_round(device, round);
        self.fail_of(device, round, dr)
    }

    /// Effective latency of `device` at `round`: the base profile scaled
    /// by the round's capacity multiplier.
    pub fn latency(&self, device: usize, round: usize) -> f64 {
        self.profiles.train_time(device) * self.multiplier(device, round)
    }

    /// The fleet-wide modulator multiplier at `round` (1.0 when the
    /// modulator is `Static`). O(1) amortised: one byte of memoized chain
    /// state per round, shared by the whole fleet.
    pub fn modulator_multiplier(&self, round: usize) -> f64 {
        match &self.dynamics.modulator {
            CapacityModel::Static => 1.0,
            CapacityModel::Markov(chain) => chain.multipliers[self.modulator_state(round) as usize],
        }
    }

    /// Snapshot one round's realised conditions for every device — the
    /// dense small-fleet path (benches, figures). O(fleet) by nature; on
    /// a static fleet the snapshot is uniform and allocates nothing.
    pub fn round_snapshot(&self, round: usize) -> RoundFleet {
        let n = self.len();
        if self.is_static {
            return RoundFleet {
                n,
                online: None,
                multiplier: None,
                failures: Vec::new(),
            };
        }
        let mut online = vec![0u64; n.div_ceil(64)];
        let mut multiplier = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for d in 0..n {
            let dr = self.device_round(d, round);
            if dr.online {
                online[d / 64] |= 1 << (d % 64);
            }
            multiplier.push(self.multiplier_of(d, round, dr));
            if let Some(f) = self.fail_of(d, round, dr) {
                failures.push((d, f));
            }
        }
        RoundFleet {
            n,
            online: Some(online),
            multiplier: Some(multiplier),
            failures,
        }
    }

    // ---- lazy realisation ------------------------------------------------

    /// Which shard holds `device`'s trajectory.
    pub fn shard_of(device: usize) -> usize {
        device % FleetModel::SHARD_COUNT
    }

    /// Per-shard query counters — the tripwire proving unqueried shards
    /// are never touched.
    pub fn shard_touches(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.touched.load(Ordering::Relaxed))
            .collect()
    }

    /// Total shard queries across the fleet — the same information as
    /// [`FleetModel::shard_touches`] folded to one number, without
    /// allocating the per-shard vector (telemetry hot path).
    pub fn shard_touch_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.touched.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of devices whose trajectories have been realised.
    pub fn realised_devices(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.slots.lock().expect("fleet shard poisoned").len())
            .sum()
    }

    /// Total realised (device, round) states across the fleet.
    pub fn realised_device_rounds(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.slots
                    .lock()
                    .expect("fleet shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Approximate bytes of realised trajectory state (carried chain
    /// state only; memoryless quantities are recomputed, not stored).
    pub fn realised_state_bytes(&self) -> usize {
        self.realised_device_rounds() * std::mem::size_of::<DevRound>()
            + self.realised_devices()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<DeviceTraj>())
    }

    /// The carried state of `device` at `round`, realising any missing
    /// prefix of its trajectory (and nothing else).
    fn device_round(&self, device: usize, round: usize) -> DevRound {
        assert!(device < self.len(), "device {device} out of range");
        let shard = &self.shards[FleetModel::shard_of(device)];
        shard.touched.fetch_add(1, Ordering::Relaxed);
        let mut slots = shard.slots.lock().expect("fleet shard poisoned");
        let traj = slots.entry(device as u64).or_default();
        while traj.len() <= round {
            let r = traj.len();
            let prev = if r == 0 { None } else { Some(traj[r - 1]) };
            let next = self.advance_device(device, r, prev);
            traj.push(next);
        }
        traj[round]
    }

    /// Advance `device`'s chain one round — the same decision sequence,
    /// hash stream and branch order as the dense reference realisation,
    /// restricted to a single device.
    fn advance_device(&self, device: usize, round: usize, prev: Option<DevRound>) -> DevRound {
        let r = round as u64;
        let du = device as u64;

        // Capacity chain.
        let state = match &self.dynamics.capacity {
            CapacityModel::Static => 0,
            CapacityModel::Markov(chain) => {
                let u = unit(mix(self.seed, r, du, ROLE_CAPACITY));
                match prev {
                    None => pick(&chain.initial, u),
                    Some(p) => {
                        let k = chain.states();
                        let s = p.cap_state as usize;
                        pick(&chain.transitions[s * k..(s + 1) * k], u)
                    }
                }
            }
        };

        // Availability chain. A device that failed mid-interval last
        // round counts as offline going into the churn transition — it
        // has to "rejoin" like any other dropout. Under AlwaysOn it
        // reboots in time for the next round.
        let on = match self.dynamics.availability {
            AvailabilityModel::AlwaysOn => true,
            AvailabilityModel::Churn { dropout, rejoin } => {
                let was_on = match prev {
                    None => true,
                    Some(p) => p.online && self.fail_of(device, round - 1, p).is_none(),
                };
                let u = unit(mix(self.seed, r, du, ROLE_AVAIL));
                if was_on {
                    u >= dropout
                } else {
                    u < rejoin
                }
            }
        };

        DevRound {
            cap_state: state as u8,
            online: on,
        }
    }

    /// Recompute the (memoryless) effective multiplier from carried state.
    fn multiplier_of(&self, device: usize, round: usize, dr: DevRound) -> f64 {
        let mut m = match &self.dynamics.capacity {
            CapacityModel::Static => 1.0,
            CapacityModel::Markov(chain) => chain.multipliers[dr.cap_state as usize],
        };

        // Transient straggler spike.
        if self.dynamics.spikes.prob > 0.0
            && unit(mix(self.seed, round as u64, device as u64, ROLE_SPIKE))
                < self.dynamics.spikes.prob
        {
            m *= self.dynamics.spikes.magnitude;
        }

        // Fleet-wide correlated modulator (identity ⇒ no multiply, so
        // modulator-free configs stay bit-identical to the pre-modulator
        // realisation).
        if let CapacityModel::Markov(chain) = &self.dynamics.modulator {
            m *= chain.multipliers[self.modulator_state(round) as usize];
        }
        m
    }

    /// Recompute the (memoryless) mid-round failure from carried state.
    /// Only meaningful for online devices.
    fn fail_of(&self, device: usize, round: usize, dr: DevRound) -> Option<f64> {
        let r = round as u64;
        let du = device as u64;
        if dr.online
            && self.dynamics.mid_round_failure > 0.0
            && unit(mix(self.seed, r, du, ROLE_FAIL)) < self.dynamics.mid_round_failure
        {
            Some(unit(mix(self.seed, r, du, ROLE_FAIL_TIME)))
        } else {
            None
        }
    }

    /// Memoized fleet-wide modulator state at `round`.
    fn modulator_state(&self, round: usize) -> u8 {
        let chain = match &self.dynamics.modulator {
            CapacityModel::Static => return 0,
            CapacityModel::Markov(chain) => chain,
        };
        {
            let memo = self.modulator_memo.read().expect("modulator memo poisoned");
            if round < memo.len() {
                return memo[round];
            }
        }
        let mut memo = self
            .modulator_memo
            .write()
            .expect("modulator memo poisoned");
        while memo.len() <= round {
            let r = memo.len();
            let u = unit(mix(self.seed, r as u64, u64::MAX, ROLE_MODULATOR));
            let s = if r == 0 {
                pick(&chain.initial, u)
            } else {
                let k = chain.states();
                let p = memo[r - 1] as usize;
                pick(&chain.transitions[p * k..(p + 1) * k], u)
            };
            memo.push(s as u8);
        }
        memo[round]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{MarkovCapacity, SpikeModel};

    fn profiles(n: usize) -> Vec<DeviceProfile> {
        (0..n)
            .map(|i| DeviceProfile::new(i, 1.0 + i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn static_fleet_is_identity() {
        let m = FleetModel::static_fleet(&profiles(4));
        assert!(m.is_static());
        for r in 0..5 {
            for d in 0..4 {
                assert_eq!(m.multiplier(d, r), 1.0);
                assert!(m.online(d, r));
                assert_eq!(m.fail_frac(d, r), None);
                assert_eq!(m.latency(d, r), 1.0 + d as f64 * 0.5);
            }
        }
        // The static path never touches the trajectory shards.
        assert_eq!(m.realised_devices(), 0);
        assert!(m.shard_touches().iter().all(|&t| t == 0));
    }

    #[test]
    fn identity_chain_matches_static_values() {
        let dynamic = FleetModel::new(
            &profiles(6),
            FleetDynamics {
                capacity: CapacityModel::Markov(MarkovCapacity::identity()),
                ..FleetDynamics::default()
            },
            7,
        );
        assert!(!dynamic.is_static());
        for r in 0..4 {
            for d in 0..6 {
                assert_eq!(dynamic.multiplier(d, r), 1.0);
                assert!(dynamic.online(d, r));
                assert_eq!(dynamic.fail_frac(d, r), None);
            }
        }
    }

    #[test]
    fn trajectory_is_deterministic_and_query_order_independent() {
        let make = || FleetModel::new(&profiles(10), FleetDynamics::edge_fleet(0.2, 0.1), 42);
        let a = make();
        let b = make();
        // Query b backwards, a forwards — identical realisations.
        let rounds = 8;
        let fwd: Vec<RoundFleet> = (0..rounds).map(|r| a.round_snapshot(r)).collect();
        let bwd: Vec<RoundFleet> = (0..rounds).rev().map(|r| b.round_snapshot(r)).collect();
        for (r, snap) in fwd.iter().enumerate() {
            assert_eq!(*snap, bwd[rounds - 1 - r], "round {r} diverged");
        }
    }

    #[test]
    fn churn_takes_devices_offline_and_back() {
        let m = FleetModel::new(&profiles(50), FleetDynamics::churn(0.3), 3);
        let mut ever_off = 0;
        let mut came_back = 0;
        for d in 0..50 {
            let mut was_off = false;
            for r in 0..20 {
                let on = m.online(d, r);
                if !on {
                    was_off = true;
                } else if was_off {
                    came_back += 1;
                    break;
                }
            }
            if was_off {
                ever_off += 1;
            }
        }
        assert!(
            ever_off > 20,
            "30% churn should hit most devices: {ever_off}"
        );
        assert!(
            came_back > 10,
            "rejoin must bring devices back: {came_back}"
        );
    }

    #[test]
    fn markov_states_change_latency_over_time() {
        let m = FleetModel::new(
            &profiles(20),
            FleetDynamics {
                capacity: CapacityModel::Markov(MarkovCapacity::idle_loaded_throttled()),
                ..FleetDynamics::default()
            },
            11,
        );
        let mut distinct = std::collections::BTreeSet::new();
        for r in 0..30 {
            for d in 0..20 {
                distinct.insert((m.multiplier(d, r) * 10.0) as i64);
            }
        }
        assert!(
            distinct.len() >= 3,
            "all three states should be visited: {distinct:?}"
        );
    }

    #[test]
    fn spikes_inflate_latency_occasionally() {
        let m = FleetModel::new(
            &profiles(30),
            FleetDynamics {
                spikes: SpikeModel {
                    prob: 0.2,
                    magnitude: 4.0,
                },
                ..FleetDynamics::default()
            },
            5,
        );
        let mut spiked = 0;
        let mut total = 0;
        for r in 0..20 {
            for d in 0..30 {
                total += 1;
                if m.multiplier(d, r) > 1.0 {
                    spiked += 1;
                }
            }
        }
        let rate = spiked as f64 / total as f64;
        assert!((0.1..0.3).contains(&rate), "spike rate {rate}");
    }

    #[test]
    fn failures_only_strike_online_devices() {
        let m = FleetModel::new(
            &profiles(40),
            FleetDynamics {
                availability: AvailabilityModel::Churn {
                    dropout: 0.4,
                    rejoin: 0.3,
                },
                mid_round_failure: 0.3,
                ..FleetDynamics::default()
            },
            9,
        );
        let mut failures = 0;
        for r in 0..15 {
            for d in 0..40 {
                if let Some(f) = m.fail_frac(d, r) {
                    failures += 1;
                    assert!(m.online(d, r), "only online devices can fail mid-round");
                    assert!((0.0..1.0).contains(&f));
                }
            }
        }
        assert!(failures > 20, "failures should occur: {failures}");
    }

    #[test]
    fn failed_devices_count_as_offline_for_the_churn_transition() {
        // With rejoin = 0, any device that fails mid-round under churn
        // must stay offline forever after.
        let m = FleetModel::new(
            &profiles(30),
            FleetDynamics {
                availability: AvailabilityModel::Churn {
                    dropout: 0.0,
                    rejoin: 0.0,
                },
                mid_round_failure: 0.5,
                ..FleetDynamics::default()
            },
            13,
        );
        for d in 0..30 {
            let mut dead = false;
            for r in 0..10 {
                if dead {
                    assert!(!m.online(d, r), "device {d} must stay down after failing");
                }
                if m.fail_frac(d, r).is_some() {
                    dead = true;
                }
            }
        }
    }

    #[test]
    fn different_seeds_realise_different_fleets() {
        let a = FleetModel::new(&profiles(20), FleetDynamics::edge_fleet(0.2, 0.1), 1);
        let b = FleetModel::new(&profiles(20), FleetDynamics::edge_fleet(0.2, 0.1), 2);
        let same = (0..10).all(|r| a.round_snapshot(r) == b.round_snapshot(r));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn pick_covers_edges() {
        assert_eq!(pick(&[0.5, 0.5], 0.0), 0);
        assert_eq!(pick(&[0.5, 0.5], 0.75), 1);
        // u beyond the accumulated mass (rounding) clamps to the last.
        assert_eq!(pick(&[0.5, 0.5], 1.0), 1);
    }

    #[test]
    fn realisation_is_proportional_to_devices_queried() {
        // 10k-device fleet, but only devices 3 and 17 are ever queried:
        // exactly two trajectories realise and only their two shards see
        // any traffic at all.
        let src = ProfileSource::lazy(
            10_000,
            fedhisyn_simnet::HeterogeneityModel::Uniform { h: 10.0 },
            1.0,
            99,
        );
        let m = FleetModel::with_source(src, FleetDynamics::edge_fleet(0.2, 0.1), 21);
        for r in 0..12 {
            let _ = m.multiplier(3, r);
            let _ = m.online(17, r);
            let _ = m.fail_frac(3, r);
        }
        assert_eq!(m.realised_devices(), 2);
        assert_eq!(m.realised_device_rounds(), 24);
        let touches = m.shard_touches();
        for (s, &t) in touches.iter().enumerate() {
            if s == FleetModel::shard_of(3) || s == FleetModel::shard_of(17) {
                assert!(t > 0, "queried shard {s} must register traffic");
            } else {
                assert_eq!(t, 0, "unqueried shard {s} must never be touched");
            }
        }
        assert!(m.realised_state_bytes() < 1024, "footprint stays tiny");
    }

    #[test]
    fn modulator_is_shared_and_correlated_across_the_fleet() {
        let m = FleetModel::new(
            &profiles(30),
            FleetDynamics {
                modulator: CapacityModel::Markov(MarkovCapacity::diurnal_burst()),
                ..FleetDynamics::default()
            },
            17,
        );
        assert!(!m.is_static());
        let mut distinct = std::collections::BTreeSet::new();
        for r in 0..60 {
            let shared = m.modulator_multiplier(r);
            distinct.insert((shared * 10.0) as i64);
            for d in 0..30 {
                // No per-device capacity/spike processes: every device
                // carries exactly the shared modulator multiplier.
                assert_eq!(m.multiplier(d, r), shared, "round {r} device {d}");
            }
        }
        assert!(
            distinct.len() >= 2,
            "the chain should visit several states: {distinct:?}"
        );
    }

    #[test]
    fn modulator_multiplier_is_query_order_independent() {
        let make = || {
            FleetModel::new(
                &profiles(4),
                FleetDynamics {
                    modulator: CapacityModel::Markov(MarkovCapacity::diurnal_burst()),
                    ..FleetDynamics::default()
                },
                23,
            )
        };
        let a = make();
        let b = make();
        let fwd: Vec<f64> = (0..40).map(|r| a.modulator_multiplier(r)).collect();
        let bwd: Vec<f64> = (0..40).rev().map(|r| b.modulator_multiplier(r)).collect();
        for (r, &v) in fwd.iter().enumerate() {
            assert_eq!(v, bwd[39 - r], "round {r}");
        }
    }

    #[test]
    fn compact_snapshot_agrees_with_point_queries() {
        let m = FleetModel::new(&profiles(70), FleetDynamics::edge_fleet(0.3, 0.2), 8);
        for r in 0..6 {
            let snap = m.round_snapshot(r);
            assert_eq!(snap.len(), 70);
            let mut online = 0;
            for d in 0..70 {
                assert_eq!(snap.online(d), m.online(d, r));
                assert_eq!(snap.multiplier(d), m.multiplier(d, r));
                assert_eq!(snap.fail_frac(d), m.fail_frac(d, r));
                online += snap.online(d) as usize;
            }
            assert_eq!(snap.online_count(), online);
        }
    }

    #[test]
    fn static_snapshot_is_uniform_and_unallocated() {
        let m = FleetModel::static_fleet(&profiles(5));
        let snap = m.round_snapshot(3);
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.online_count(), 5);
        for d in 0..5 {
            assert!(snap.online(d));
            assert_eq!(snap.multiplier(d), 1.0);
            assert_eq!(snap.fail_frac(d), None);
        }
        // The uniform representation carries no per-device vectors.
        assert_eq!(snap, snap.clone());
    }
}
